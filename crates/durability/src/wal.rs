//! The write-ahead log: framed bulk redo records and the group-commit writer.
//!
//! # File format
//!
//! ```text
//! [ magic "GPTXWAL1" (8 bytes) ][ epoch: u64 LE ]
//! [ frame ]*
//!
//! frame := [ payload len: u32 LE ][ crc32(payload): u32 LE ][ payload ]
//! payload := [ lsn: u64 LE ][ ShardDelta wire encoding ]
//! ```
//!
//! Each frame is appended with a single `write(2)` call, so a crash can only
//! tear the *tail* of the file: [`read_wal`] stops at the first frame whose
//! length runs past EOF, whose checksum mismatches, or whose LSN breaks the
//! strictly-increasing sequence, and reports everything before it as the
//! committed prefix. Dropping the torn tail is correct because a record is
//! only acknowledged as durable *after* its frame (and, per policy, its
//! fsync) completed — an incomplete frame was never promised to anyone.
//!
//! The `epoch` ties the log to the checkpoint it extends: the checkpoint and
//! log of one durability epoch carry the same token, and recovery ignores a
//! log whose epoch differs from the checkpoint's. This is what makes the
//! initialize/checkpoint sequences crash-safe — a crash after the new
//! checkpoint landed but before the old log was truncated leaves a
//! *mismatched-epoch* log on disk, whose stale records (which the snapshot
//! already contains, and whose LSNs may even collide with the new epoch's)
//! must not replay.

use gputx_storage::{Database, ShardDelta, WireError, WireReader, WireWriter};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file (format version 1).
pub const WAL_MAGIC: [u8; 8] = *b"GPTXWAL1";

/// When the group-commit writer forces its appends to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every bulk record: a resolved ticket is durable. The
    /// safest and slowest policy — one synchronous disk flush per bulk (still
    /// amortized over every transaction in the bulk, which is the whole point
    /// of bulk-granular logging).
    PerBulk,
    /// `fsync` every `n` records (and on checkpoint/shutdown): a crash can
    /// lose at most the last `n` bulks. The middle ground for workloads that
    /// tolerate a bounded redo window.
    EveryN(u32),
    /// Never `fsync` on append; the OS page cache decides when bytes reach
    /// the disk (an explicit [`WalWriter::sync`], checkpoint or clean
    /// shutdown still flushes). Fastest; a crash may lose recently committed
    /// bulks, but recovery still yields a consistent committed prefix.
    Async,
}

/// One bulk's redo record: the log sequence number plus the bulk's net
/// typed write-set in the dense [`ShardDelta`] representation.
#[derive(Debug, Clone, PartialEq)]
pub struct BulkLogRecord {
    /// Log sequence number: the first record after a checkpoint carries the
    /// checkpoint's `next_lsn`, and every following record increments by one.
    pub lsn: u64,
    /// The bulk's net effect: last-written value per field, inserted rows in
    /// application order (tagged 0..n per table), final delete flags.
    pub write_set: ShardDelta,
}

impl BulkLogRecord {
    /// Encode the record payload (no framing; the writer frames it).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.lsn);
        self.write_set.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decode a payload produced by [`BulkLogRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(payload);
        let lsn = r.get_u64()?;
        let write_set = ShardDelta::decode(&mut r)?;
        r.expect_end()?;
        Ok(BulkLogRecord { lsn, write_set })
    }

    /// Apply the record to `db`, reproducing exactly what committing the
    /// original bulk did: scatter the typed cells, append the inserted rows
    /// through the insert buffers (applied in tag order with full index
    /// maintenance, the batched update of §3.2), and set the delete flags.
    pub fn replay_into(mut self, db: &mut Database) {
        self.write_set.merge_into(db);
        db.apply_insert_buffers();
    }
}

/// Appends framed [`BulkLogRecord`]s to a WAL file under an [`FsyncPolicy`].
///
/// Each record is written with one `write_all` of the complete frame, so a
/// torn write can only truncate the file tail — never interleave two frames.
///
/// # Failure poisoning
///
/// A failed append (or fsync) **poisons** the writer: the failing frame may
/// sit half-written at the tail, and a bulk whose record never landed has
/// already been applied to the live database, so any *later* record would be
/// built against state the log cannot reproduce — and appending it after the
/// torn bytes would make it unreachable to recovery anyway. A poisoned
/// writer therefore fails every subsequent append/sync (after best-effort
/// truncating the file back to its last intact frame) until a checkpoint
/// supersedes the log with a fresh snapshot and a fresh writer.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced: u32,
    records: u64,
    bytes: u64,
    syncs: u64,
    poisoned: bool,
    faults: Option<std::sync::Arc<gputx_faults::WalFaults>>,
}

impl WalWriter {
    /// Create (truncating any previous log) a WAL at `path`, stamped with
    /// the durability `epoch` that ties it to its checkpoint. The header is
    /// written and synced immediately, so a zero-record log is readable.
    /// The caller is responsible for fsyncing the containing directory so
    /// the new file's entry itself survives a crash.
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy, epoch: u64) -> io::Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&epoch.to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path,
            policy,
            unsynced: 0,
            records: 0,
            bytes: (WAL_MAGIC.len() + 8) as u64,
            syncs: 0,
            poisoned: false,
            faults: None,
        })
    }

    /// Install a deterministic fault-decision stream. Each append/sync first
    /// consults the stream; an injected fault behaves exactly like the real
    /// I/O error it models (including poisoning the writer). The stream is
    /// shared via `Arc` so a fresh post-checkpoint writer continues it
    /// rather than replaying it from the start.
    pub fn set_faults(&mut self, faults: Option<std::sync::Arc<gputx_faults::WalFaults>>) {
        self.faults = faults;
    }

    fn poisoned_error() -> io::Error {
        io::Error::other(
            "WAL writer poisoned by an earlier append/sync failure; \
             checkpoint to start a fresh log epoch",
        )
    }

    /// Record a failure: best-effort truncate back to the last intact frame
    /// so the on-disk file stays a clean committed prefix, then refuse all
    /// further appends (see the type docs for why continuing would corrupt
    /// recovery).
    fn poison(&mut self) {
        self.poisoned = true;
        let _ = self.file.set_len(self.bytes);
    }

    /// True after an append/sync failure; only a fresh writer (checkpoint)
    /// clears the condition.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append one record and apply the fsync policy. When this returns under
    /// `PerBulk`, the record is on stable storage. A failure poisons the
    /// writer (see the type docs).
    pub fn append(&mut self, record: &BulkLogRecord) -> io::Result<()> {
        if self.poisoned {
            return Err(Self::poisoned_error());
        }
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&gputx_storage::wire::crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        match self.faults.as_ref().and_then(|f| f.on_append()) {
            Some(gputx_faults::WalFault::AppendError) => {
                self.poison();
                return Err(io::Error::other("injected WAL append error"));
            }
            Some(gputx_faults::WalFault::ShortWrite) => {
                // Model a torn write: a prefix of the frame reaches the file,
                // then the append fails. `poison` truncates back to the last
                // intact frame, same as a real short write would be handled.
                let torn = frame.len() / 2;
                let _ = self.file.write_all(&frame[..torn]);
                self.poison();
                return Err(io::Error::other("injected WAL short write"));
            }
            _ => {}
        }
        if let Err(e) = self.file.write_all(&frame) {
            self.poison();
            return Err(e);
        }
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::PerBulk => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Async => {}
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage. A failed fsync
    /// poisons the writer — after `fsync` reports an error, the kernel may
    /// have already dropped the dirty pages, so retrying cannot be trusted
    /// to durably land the data.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(Self::poisoned_error());
        }
        if self.unsynced > 0 {
            if self.faults.as_ref().and_then(|f| f.on_sync()).is_some() {
                self.poison();
                return Err(io::Error::other("injected WAL fsync error"));
            }
            if let Err(e) = self.file.sync_all() {
                self.poison();
                return Err(e);
            }
            self.syncs += 1;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Records appended over the writer's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written, including the header and frames.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Number of `fsync` calls issued.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Clean shutdown flushes even under `Async`; a crash obviously
        // doesn't, which is exactly the policy's documented trade-off.
        let _ = self.sync();
    }
}

/// Result of scanning a WAL file: the committed-prefix records plus whether
/// (and where) a torn tail was dropped.
#[derive(Debug)]
pub struct WalScan {
    /// The durability epoch stamped in the header (must match the
    /// checkpoint's for the records to be replayable).
    pub epoch: u64,
    /// Every record of the committed prefix, in LSN order.
    pub records: Vec<BulkLogRecord>,
    /// True when trailing bytes were dropped (torn frame, checksum mismatch
    /// or LSN discontinuity).
    pub torn_tail: bool,
    /// Bytes of the file covered by the committed prefix (header included).
    pub valid_bytes: u64,
}

/// Read a WAL file, returning the longest committed prefix of records. A
/// torn or corrupted tail is dropped, not an error; a missing/garbled header
/// *is* an error (that file was never a WAL).
pub fn read_wal(path: impl AsRef<Path>) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    File::open(path.as_ref())?.read_to_end(&mut buf)?;
    let header_len = WAL_MAGIC.len() + 8;
    if buf.len() < header_len || buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "missing WAL magic header",
        ));
    }
    let epoch = u64::from_le_bytes(
        buf[WAL_MAGIC.len()..header_len]
            .try_into()
            .expect("8 bytes"),
    );
    let mut records = Vec::new();
    let mut pos = header_len;
    let mut expected_lsn: Option<u64> = None;
    let mut torn_tail = false;
    while pos < buf.len() {
        // Frame header: payload length + checksum.
        if buf.len() - pos < 8 {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if buf.len() - pos - 8 < len {
            torn_tail = true;
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if gputx_storage::wire::crc32(payload) != crc {
            torn_tail = true;
            break;
        }
        let record = match BulkLogRecord::decode(payload) {
            Ok(record) => record,
            Err(_) => {
                torn_tail = true;
                break;
            }
        };
        if let Some(expected) = expected_lsn {
            if record.lsn != expected {
                torn_tail = true;
                break;
            }
        }
        expected_lsn = Some(record.lsn + 1);
        pos += 8 + len;
        records.push(record);
    }
    Ok(WalScan {
        epoch,
        records,
        torn_tail,
        valid_bytes: pos as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataType, ShardView, StorageView, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gputx-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("test.wal")
    }

    fn sample_db() -> (Database, u32) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Double),
            ],
            vec![0],
        ));
        for i in 0..4i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Double(0.0)]);
        }
        (db, t)
    }

    fn sample_record(db: &Database, t: u32, lsn: u64) -> BulkLogRecord {
        let mut delta = ShardDelta::default();
        {
            let mut view = ShardView::new(db, &mut delta);
            view.set_f64(t, 1, 1, lsn as f64 + 0.5);
            view.buffer_insert(t, 0, vec![Value::Int(100 + lsn as i64), Value::Double(1.0)]);
            view.mark_deleted(t, 0);
        }
        BulkLogRecord {
            lsn,
            write_set: delta,
        }
    }

    #[test]
    fn record_encode_decode_round_trip() {
        let (db, t) = sample_db();
        let record = sample_record(&db, t, 7);
        let payload = record.encode();
        let decoded = BulkLogRecord::decode(&payload).expect("decodes");
        assert_eq!(decoded, record);
    }

    #[test]
    fn append_and_read_back() {
        let (db, t) = sample_db();
        let path = tmp("roundtrip");
        let mut wal = WalWriter::create(&path, FsyncPolicy::PerBulk, 7).expect("create");
        for lsn in 0..3 {
            wal.append(&sample_record(&db, t, lsn)).expect("append");
        }
        assert_eq!(wal.records(), 3);
        assert_eq!(wal.syncs(), 3, "PerBulk syncs once per append");
        drop(wal);
        let scan = read_wal(&path).expect("read");
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].lsn, 2);
    }

    #[test]
    fn every_n_policy_batches_syncs() {
        let (db, t) = sample_db();
        let path = tmp("everyn");
        let mut wal = WalWriter::create(&path, FsyncPolicy::EveryN(4), 7).expect("create");
        for lsn in 0..10 {
            wal.append(&sample_record(&db, t, lsn)).expect("append");
        }
        assert_eq!(wal.syncs(), 2, "10 records at EveryN(4) = syncs at 4 and 8");
        wal.sync().expect("final sync");
        assert_eq!(wal.syncs(), 3);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let (db, t) = sample_db();
        let path = tmp("torn");
        let mut wal = WalWriter::create(&path, FsyncPolicy::Async, 7).expect("create");
        let header = WAL_MAGIC.len() + 8; // magic + epoch
        let mut ends = vec![header as u64];
        for lsn in 0..3 {
            wal.append(&sample_record(&db, t, lsn)).expect("append");
            ends.push(wal.bytes_written());
        }
        drop(wal);
        let full = std::fs::read(&path).expect("read file");
        for cut in header..full.len() {
            std::fs::write(&path, &full[..cut]).expect("write truncated");
            let scan = read_wal(&path).expect("scan");
            let expected = ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
            assert_eq!(
                scan.records.len(),
                expected,
                "cut at {cut}: longest committed prefix"
            );
            assert_eq!(scan.torn_tail, cut as u64 != ends[expected]);
        }
    }

    #[test]
    fn corrupted_byte_drops_the_tail() {
        let (db, t) = sample_db();
        let path = tmp("corrupt");
        let mut wal = WalWriter::create(&path, FsyncPolicy::PerBulk, 7).expect("create");
        let mut first_end = 0;
        for lsn in 0..2 {
            wal.append(&sample_record(&db, t, lsn)).expect("append");
            if lsn == 0 {
                first_end = wal.bytes_written() as usize;
            }
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip one payload byte of the second record.
        let target = first_end + 9;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let scan = read_wal(&path).expect("scan");
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1, "only the intact record survives");
    }

    #[test]
    fn replay_reproduces_the_mutations() {
        let (db0, t) = sample_db();
        let record = sample_record(&db0, t, 0);
        // Reference: the same mutations applied directly.
        let mut direct = db0.clone();
        direct.table_mut(t).set_f64(1, 1, 0.5);
        direct
            .table_mut(t)
            .buffered_insert(0, vec![Value::Int(100), Value::Double(1.0)]);
        direct.table_mut(t).delete(0);
        direct.apply_insert_buffers();
        let mut replayed = db0.clone();
        record.replay_into(&mut replayed);
        assert!(replayed == direct);
    }

    #[test]
    fn poisoned_writer_refuses_further_work_and_keeps_a_clean_prefix() {
        let (db, t) = sample_db();
        let path = tmp("poison");
        let mut wal = WalWriter::create(&path, FsyncPolicy::Async, 7).expect("create");
        wal.append(&sample_record(&db, t, 0)).expect("append");
        wal.append(&sample_record(&db, t, 1)).expect("append");
        assert!(!wal.is_poisoned());
        wal.poison();
        assert!(wal.is_poisoned());
        assert!(wal.append(&sample_record(&db, t, 2)).is_err());
        assert!(wal.sync().is_err());
        assert_eq!(wal.records(), 2, "the failed append is not counted");
        drop(wal);
        let scan = read_wal(&path).expect("scan");
        assert!(
            !scan.torn_tail,
            "poison truncates back to the intact prefix"
        );
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn missing_magic_is_an_error() {
        let path = tmp("nomagic");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        assert!(read_wal(&path).is_err());
    }
}
