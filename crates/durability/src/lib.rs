//! # gputx-durability — bulk-granular redo logging, checkpoints, recovery
//!
//! GPUTx commits an entire *bulk* of transactions atomically (§3.2 of the
//! paper), which makes redo-only, group-commit logging at bulk boundaries the
//! natural durability design: one log record per bulk, carrying the bulk's
//! *net* typed write-set, appended and fsynced once per bulk instead of once
//! per transaction. This crate implements that design:
//!
//! * [`capture`] — assembles a committed bulk's redo write-set (a
//!   [`ShardDelta`](gputx_storage::shard::ShardDelta), the same dense typed-cell
//!   container the parallel executor uses) by reading the storage layer's
//!   dirty-field marks back out of the committed database state.
//! * [`wal`] — the write-ahead log: length+CRC framed [`BulkLogRecord`]s with
//!   a group-commit [`WalWriter`] whose [`FsyncPolicy`] trades durability
//!   latency for throughput (`PerBulk`, `EveryN`, `Async`).
//! * [`checkpoint`] — whole-database snapshots written atomically
//!   (temp file + fsync + rename) that truncate the log.
//! * [`manager`] — the engine-facing [`Durability`] handle
//!   ([`DurabilityConfig`] lives in `gputx-core`'s `EngineConfig`) and
//!   [`recover`], which rebuilds a [`Database`](gputx_storage::Database)
//!   bit-identical to the committed-prefix state, dropping a torn tail.
//!
//! The recovery invariants — why replaying these records reproduces the
//! pre-crash state exactly — are documented in `docs/durability.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod capture;
pub mod checkpoint;
pub mod manager;
pub mod wal;

pub use capture::WriteCapture;
pub use checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
pub use manager::{
    fresh_epoch, recover, recover_from, Durability, DurabilityConfig, DurabilityStats, Recovery,
};
pub use wal::{read_wal, BulkLogRecord, FsyncPolicy, WalScan, WalWriter};
