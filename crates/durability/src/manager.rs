//! The engine-facing durability handle and crash recovery.
//!
//! A durability *directory* holds exactly two files:
//!
//! * `gputx.ckpt` — the latest checkpoint (atomic snapshot + `next_lsn`);
//! * `gputx.wal` — redo records for every bulk committed since.
//!
//! [`Durability::create`] writes an initial checkpoint of the starting
//! database and opens a fresh log, so [`recover`] is always self-contained:
//! checkpoint plus log prefix reproduce the committed state with no
//! out-of-band inputs. [`Durability::checkpoint`] re-snapshots and truncates
//! the log (snapshot first — a crash between the two steps recovers from the
//! new snapshot and *skips* the stale log records below its `next_lsn`,
//! whose inserts would otherwise apply twice; see `docs/durability.md` for
//! why the ordering is snapshot → truncate and never the reverse).

use crate::capture::WriteCapture;
use crate::checkpoint;
use crate::checkpoint::{read_checkpoint, write_checkpoint};
use crate::wal::{read_wal, BulkLogRecord, FsyncPolicy, WalWriter};
use gputx_storage::Database;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the checkpoint within a durability directory.
pub const CHECKPOINT_FILE: &str = "gputx.ckpt";
/// File name of the write-ahead log within a durability directory.
pub const WAL_FILE: &str = "gputx.wal";

/// Durability configuration carried by `gputx-core`'s `EngineConfig`.
///
/// Disabled by default (`dir: None`): the engines behave exactly as before.
/// Point `dir` at a directory to make every committed bulk emit a redo
/// record, with [`FsyncPolicy`] picking the durability/throughput trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory for the checkpoint and WAL; `None` disables durability.
    pub dir: Option<PathBuf>,
    /// When appended records are forced to stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            dir: None,
            fsync: FsyncPolicy::PerBulk,
        }
    }
}

impl DurabilityConfig {
    /// Durability disabled (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Log to `dir` with the default `PerBulk` fsync policy.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: Some(dir.into()),
            fsync: FsyncPolicy::PerBulk,
        }
    }

    /// Builder-style: pick the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// True when a directory is configured.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// Cumulative cost accounting of the durability path, for the WAL-OVERHEAD
/// benchmark and operator dashboards.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DurabilityStats {
    /// Bulk records appended.
    pub records: u64,
    /// Bytes appended to the log (header + frames).
    pub wal_bytes: u64,
    /// `fsync` calls issued by the log writer.
    pub syncs: u64,
    /// Wall-clock seconds spent capturing write-sets, encoding, appending
    /// and fsyncing — the logging overhead a bulk's commit path pays.
    pub log_secs: f64,
}

/// The engine-facing durability handle: owns the WAL writer and the
/// checkpoint/recovery lifecycle of one durability directory.
///
/// # Examples
///
/// ```
/// use gputx_durability::{recover, Durability, FsyncPolicy};
/// use gputx_storage::schema::{ColumnDef, TableSchema};
/// use gputx_storage::{DataItemId, Database, DataType, Value};
/// use gputx_txn::{BasicOp, ProcedureDef, ProcedureRegistry, TxnSignature};
///
/// // A one-table database and a one-procedure registry.
/// let mut db = Database::column_store();
/// let t = db.create_table(TableSchema::new(
///     "counters",
///     vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("v", DataType::Int)],
///     vec![0],
/// ));
/// db.table_mut(t).insert(vec![Value::Int(0), Value::Int(0)]);
/// let mut reg = ProcedureRegistry::new();
/// reg.register(ProcedureDef::new(
///     "bump",
///     move |_p, _| vec![BasicOp::write(DataItemId::new(t, 0, 1))],
///     |_p| Some(0),
///     move |ctx| {
///         let v = ctx.read(t, 0, 1).as_int();
///         ctx.write(t, 0, 1, Value::Int(v + 1));
///     },
/// ));
///
/// let dir = std::env::temp_dir().join(format!("gputx-doc-{}", std::process::id()));
/// let mut durability = Durability::create(&dir, FsyncPolicy::PerBulk, &db).unwrap();
///
/// // One logged bulk: capture → execute → commit the redo record.
/// let bulk = vec![TxnSignature::new(0, 0, vec![])];
/// let capture = durability.begin_bulk(&mut db);
/// for sig in &bulk {
///     reg.execute(sig, &mut db);
/// }
/// db.apply_insert_buffers();
/// durability.commit_bulk(capture, &mut db).unwrap();
///
/// // Crash recovery: checkpoint + log reproduce the committed state exactly.
/// let recovered = recover(&dir).unwrap();
/// assert!(recovered.db == db);
/// assert_eq!(recovered.replayed, 1);
/// ```
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    fsync: FsyncPolicy,
    wal: WalWriter,
    epoch: u64,
    next_lsn: u64,
    log_secs: f64,
    faults: Option<std::sync::Arc<gputx_faults::WalFaults>>,
}

/// A fresh durability-epoch token. Epochs tie a checkpoint to the WAL
/// written alongside it; recovery refuses to replay a log whose epoch does
/// not match the checkpoint's, which is what makes the
/// checkpoint-then-truncate sequence crash-safe (a crash in between leaves
/// a *previous-epoch* log next to the new snapshot — its records, already
/// folded into the snapshot and possibly LSN-colliding with the new epoch,
/// must not replay). Wall-clock nanoseconds make collisions with any stale
/// on-disk epoch practically impossible; the value is a token, not a
/// timestamp — though replication additionally leans on its coarse
/// monotonicity: a primary promoted *later* carries a numerically larger
/// epoch, which is what lets followers fence a stale primary by comparison.
pub fn fresh_epoch() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
        | 1 // never 0, so a zeroed stale header can't collide
}

impl Durability {
    /// Initialize a durability directory for a database at its current state:
    /// writes the initial checkpoint and opens a fresh (truncated) log, both
    /// stamped with a new epoch. Any previous contents of the directory are
    /// superseded — recover *before* creating if the directory may hold
    /// state worth keeping. Crash-safe at every point: until the new
    /// checkpoint's rename lands, recovery sees the old pair; after it, the
    /// old log's mismatched epoch keeps its stale records out of replay.
    pub fn create(dir: impl Into<PathBuf>, fsync: FsyncPolicy, db: &Database) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let epoch = fresh_epoch();
        let wal_path = dir.join(WAL_FILE);
        write_checkpoint(dir.join(CHECKPOINT_FILE), db, 0, epoch)?;
        let wal = WalWriter::create(&wal_path, fsync, epoch)?;
        // The WAL's data is synced by its creation; its *directory entry*
        // needs a directory fsync, or a crash could drop the whole file —
        // including records already acknowledged durable — without a trace.
        checkpoint::fsync_dir(&wal_path)?;
        Ok(Durability {
            dir,
            fsync,
            wal,
            epoch,
            next_lsn: 0,
            log_secs: 0.0,
            faults: None,
        })
    }

    /// Install the fault plane's WAL decision stream on this manager. The
    /// current writer and every fresh writer opened by later checkpoints
    /// share the same stream, so one seeded schedule spans heals.
    pub fn set_faults(&mut self, injector: &gputx_faults::FaultInjector) {
        let stream = std::sync::Arc::new(injector.wal("wal"));
        self.wal.set_faults(Some(stream.clone()));
        self.faults = Some(stream);
    }

    /// [`Durability::create`] from a [`DurabilityConfig`]; `Ok(None)` when
    /// durability is disabled.
    pub fn from_config(config: &DurabilityConfig, db: &Database) -> io::Result<Option<Self>> {
        match &config.dir {
            Some(dir) => Self::create(dir, config.fsync, db).map(Some),
            None => Ok(None),
        }
    }

    /// Begin capturing a bulk: arm the storage layer's dirty-field tracking
    /// and snapshot the row counts. Call immediately before executing the
    /// bulk; every mutation between `begin_bulk` and [`Durability::
    /// commit_bulk`] lands in the bulk's record.
    pub fn begin_bulk(&self, db: &mut Database) -> WriteCapture {
        WriteCapture::begin(db)
    }

    /// Commit a bulk's redo record: read the net write-set out of the
    /// post-commit database (insert buffers applied), append it to the log
    /// and apply the fsync policy. Returns the record's LSN. When this
    /// returns under [`FsyncPolicy::PerBulk`], the bulk is durable.
    pub fn commit_bulk(&mut self, capture: WriteCapture, db: &mut Database) -> io::Result<u64> {
        let record = BulkLogRecord {
            lsn: self.next_lsn,
            write_set: capture.finish(db),
        };
        self.append_record(&record)
    }

    /// Append an already-assembled redo record (its `lsn` must be this
    /// handle's [`Durability::next_lsn`]) and apply the fsync policy.
    /// Returns the record's LSN. This is the lower-level half of
    /// [`Durability::commit_bulk`] for callers that build the record once and
    /// feed it to several sinks — e.g. the WAL *and* a replication fan-out.
    pub fn append_record(&mut self, record: &BulkLogRecord) -> io::Result<u64> {
        let start = Instant::now();
        assert_eq!(
            record.lsn, self.next_lsn,
            "redo record LSN must continue the log sequence"
        );
        self.wal.append(record)?;
        self.next_lsn += 1;
        self.log_secs += start.elapsed().as_secs_f64();
        Ok(record.lsn)
    }

    /// Take a checkpoint of `db` (which must reflect every bulk logged so
    /// far) and truncate the log. Snapshot first (under a new epoch),
    /// truncate second: a crash in between recovers from the fresh
    /// snapshot, and the old log's mismatched epoch keeps its stale records
    /// out of replay. (No log sync is needed — the snapshot supersedes
    /// every existing record.)
    ///
    /// This is also the recovery path after a *poisoned* log writer (a
    /// failed append/sync): the snapshot captures the full live state,
    /// including bulks whose records never landed, and the fresh writer
    /// starts a clean epoch.
    pub fn checkpoint(&mut self, db: &Database) -> io::Result<()> {
        let epoch = fresh_epoch();
        let wal_path = self.dir.join(WAL_FILE);
        write_checkpoint(self.dir.join(CHECKPOINT_FILE), db, self.next_lsn, epoch)?;
        self.wal = WalWriter::create(&wal_path, self.fsync, epoch)?;
        self.wal.set_faults(self.faults.clone());
        checkpoint::fsync_dir(&wal_path)?;
        self.epoch = epoch;
        Ok(())
    }

    /// Supervised heal after a poisoned log writer: `records_absorbed`
    /// logically-committed records whose appends never landed (their effects
    /// are already in `db`) are absorbed into a fresh checkpoint by
    /// advancing the LSN past them — so downstream consumers of the same
    /// record stream (replication, analytics) stay in step — and a fresh
    /// log epoch is opened. On success the manager accepts appends again.
    pub fn heal(&mut self, db: &Database, records_absorbed: u64) -> io::Result<()> {
        let saved = self.next_lsn;
        self.next_lsn += records_absorbed;
        // On failure, roll the LSN back so the log sequence stays in step
        // with replication/analytics consumers that never saw the record.
        match self.checkpoint(db) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.next_lsn = saved;
                Err(e)
            }
        }
    }

    /// Force every appended record to stable storage regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN the next committed bulk will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// True when the log writer was poisoned by an append/sync failure —
    /// every further [`Durability::commit_bulk`] fails until a
    /// [`Durability::checkpoint`] starts a fresh epoch.
    pub fn log_poisoned(&self) -> bool {
        self.wal.is_poisoned()
    }

    /// Cost accounting so far.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            records: self.wal.records(),
            wal_bytes: self.wal.bytes_written(),
            syncs: self.wal.syncs(),
            log_secs: self.log_secs,
        }
    }
}

/// Outcome of a recovery: the reconstructed database plus what the log held.
#[derive(Debug)]
pub struct Recovery {
    /// The committed-prefix state: checkpoint plus every intact log record.
    pub db: Database,
    /// Number of bulk records replayed on top of the checkpoint.
    pub replayed: u64,
    /// True when a torn/corrupt log tail was detected and dropped.
    pub torn_tail: bool,
    /// LSN the next record would carry — the resume point for a new
    /// [`Durability`] epoch.
    pub next_lsn: u64,
}

/// Recover the committed state from a durability directory (see
/// [`recover_from`] for the file-level variant and the [`Durability`]
/// example for an end-to-end round trip).
pub fn recover(dir: impl AsRef<Path>) -> io::Result<Recovery> {
    let dir = dir.as_ref();
    recover_from(&dir.join(CHECKPOINT_FILE), &dir.join(WAL_FILE))
}

/// Recover from an explicit checkpoint + WAL pair: load the snapshot, then
/// replay every intact log record whose LSN continues the checkpoint's
/// sequence. A torn tail (incomplete frame, checksum mismatch, LSN gap) ends
/// the replay; everything before it is reproduced bit-identically.
///
/// A log whose *epoch* differs from the checkpoint's is ignored entirely:
/// it predates the snapshot (a crash hit the window between writing the new
/// checkpoint and truncating the old log), so its records are already folded
/// into the snapshot and must not replay. The `lsn < next_lsn` skip below is
/// a second line of defense for manually assembled pairs.
pub fn recover_from(checkpoint: &Path, wal: &Path) -> io::Result<Recovery> {
    let ckpt = read_checkpoint(checkpoint)?;
    let mut db = ckpt.db;
    let mut next_lsn = ckpt.next_lsn;
    let mut replayed = 0u64;
    let scan = match read_wal(wal) {
        Ok(scan) => scan,
        // A durability directory always has a log (create writes it before
        // any record), but recovery from a manually assembled pair tolerates
        // its absence: the checkpoint alone is a consistent state.
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Recovery {
                db,
                replayed: 0,
                torn_tail: false,
                next_lsn,
            })
        }
        Err(e) => return Err(e),
    };
    if scan.epoch != ckpt.epoch {
        // Stale previous-epoch log next to a fresh snapshot: nothing in it
        // is replayable (and its LSNs may collide with the new epoch's).
        return Ok(Recovery {
            db,
            replayed: 0,
            torn_tail: false,
            next_lsn,
        });
    }
    let torn_tail = scan.torn_tail;
    for record in scan.records {
        if record.lsn < next_lsn {
            // Already folded into the checkpoint (crash between snapshot and
            // log truncation) — replaying would be redundant but *not*
            // harmless for non-idempotent inserts, so skip.
            continue;
        }
        if record.lsn != next_lsn {
            // A gap above the checkpoint horizon: everything past it is
            // unreachable (should have been caught by the scan; double
            // protection for manually assembled pairs).
            break;
        }
        record.replay_into(&mut db);
        next_lsn += 1;
        replayed += 1;
    }
    Ok(Recovery {
        db,
        replayed,
        torn_tail,
        next_lsn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Value};
    use gputx_txn::{BasicOp, ProcedureDef, ProcedureRegistry, TxnSignature};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gputx-mgr-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn setup(rows: i64) -> (Database, ProcedureRegistry, u32) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("balance", DataType::Double),
            ],
            vec![0],
        ));
        db.create_index(t, "pk", vec![0], true);
        for i in 0..rows {
            db.insert_indexed(t, vec![Value::Int(i), Value::Double(0.0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "deposit",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let bal = ctx.read(t, row, 1).as_double();
                ctx.write(t, row, 1, Value::Double(bal + 1.0));
            },
        ));
        reg.register(ProcedureDef::new(
            "open",
            move |p, _| {
                vec![BasicOp::write(DataItemId::whole_row(
                    t,
                    p[0].as_int() as u64,
                ))]
            },
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let id = ctx.param_int(0);
                ctx.insert(t, vec![Value::Int(id), Value::Double(0.5)]);
            },
        ));
        (db, reg, t)
    }

    /// Run `bulks` logged bulks serially; returns the final live state.
    fn run_bulks(
        durability: &mut Durability,
        db: &mut Database,
        reg: &ProcedureRegistry,
        bulks: usize,
        rows: i64,
    ) {
        let mut next_id = 0u64;
        for b in 0..bulks {
            // Fresh primary keys for inserts, unique across run_bulks calls.
            let fresh_key = 1000 + db.table(0).num_rows() as i64;
            let sigs: Vec<TxnSignature> = (0..6)
                .map(|i| {
                    let id = next_id;
                    next_id += 1;
                    if i == 5 {
                        TxnSignature::new(id, 1, vec![Value::Int(fresh_key)])
                    } else {
                        TxnSignature::new(
                            id,
                            0,
                            vec![Value::Int((id as i64 * 7 + b as i64) % rows)],
                        )
                    }
                })
                .collect();
            let capture = durability.begin_bulk(db);
            for sig in &sigs {
                reg.execute(sig, db);
            }
            db.apply_insert_buffers();
            durability.commit_bulk(capture, db).expect("log");
        }
    }

    #[test]
    fn create_log_recover_round_trip() {
        let dir = tmp_dir("roundtrip");
        let (mut db, reg, _t) = setup(16);
        let mut durability = Durability::create(&dir, FsyncPolicy::PerBulk, &db).expect("create");
        run_bulks(&mut durability, &mut db, &reg, 5, 16);
        assert_eq!(durability.stats().records, 5);
        assert!(durability.stats().wal_bytes > 0);
        drop(durability);
        let recovery = recover(&dir).expect("recover");
        assert_eq!(recovery.replayed, 5);
        assert!(!recovery.torn_tail);
        assert!(
            recovery.db == db,
            "recovered state must equal the live state"
        );
    }

    #[test]
    fn checkpoint_truncates_and_recovery_resumes_from_it() {
        let dir = tmp_dir("checkpoint");
        let (mut db, reg, _t) = setup(16);
        let mut durability = Durability::create(&dir, FsyncPolicy::EveryN(2), &db).expect("create");
        run_bulks(&mut durability, &mut db, &reg, 3, 16);
        durability.checkpoint(&db).expect("checkpoint");
        assert_eq!(durability.stats().records, 0, "fresh log after checkpoint");
        run_bulks(&mut durability, &mut db, &reg, 2, 16);
        durability.sync().expect("sync");
        drop(durability);
        let recovery = recover(&dir).expect("recover");
        assert_eq!(recovery.replayed, 2, "only post-checkpoint records replay");
        assert_eq!(recovery.next_lsn, 5);
        assert!(recovery.db == db);
    }

    #[test]
    fn torn_tail_recovers_the_committed_prefix() {
        let dir = tmp_dir("torn");
        let (mut db, reg, _t) = setup(16);
        let db0 = db.clone();
        let mut durability = Durability::create(&dir, FsyncPolicy::PerBulk, &db).expect("create");
        // Track the state after every bulk so each prefix has a reference.
        let mut states = vec![db.clone()];
        for _ in 0..4 {
            let before_records = durability.stats().records;
            run_bulks(&mut durability, &mut db, &reg, 1, 16);
            assert_eq!(durability.stats().records, before_records + 1);
            states.push(db.clone());
        }
        drop(durability);
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).expect("read wal");
        // Chop the log at a byte offset inside the third record.
        let scan = read_wal(&wal_path).expect("scan");
        assert_eq!(scan.records.len(), 4);
        let cut = (scan.valid_bytes as usize) - full.len() / 3;
        std::fs::write(&wal_path, &full[..cut]).expect("truncate");
        let recovery = recover(&dir).expect("recover");
        assert!(recovery.replayed < 4);
        assert!(
            recovery.db == states[recovery.replayed as usize],
            "recovery must land exactly on the committed-prefix state"
        );
        // Restarting durability from the recovered state starts a new epoch.
        let mut durability =
            Durability::create(&dir, FsyncPolicy::PerBulk, &recovery.db).expect("re-create");
        let mut db2 = recovery.db;
        run_bulks(&mut durability, &mut db2, &reg, 1, 16);
        drop(durability);
        let again = recover(&dir).expect("recover again");
        assert_eq!(again.replayed, 1);
        assert!(again.db == db2);
        assert!(db2 != db0, "sanity: work actually happened");
    }

    #[test]
    fn stale_previous_epoch_log_is_not_replayed_onto_a_fresh_checkpoint() {
        // The create/checkpoint crash window: the new checkpoint lands but
        // the crash hits before the old WAL is truncated. The stale log's
        // records are already folded into the snapshot (and their LSNs can
        // collide with the new epoch's numbering, both starting at 0 after
        // a fresh create) — replaying them would double-apply inserts and
        // updates. The epoch stamp makes them unreachable.
        let dir = tmp_dir("stale-epoch");
        let (mut db, reg, _t) = setup(16);
        let mut durability = Durability::create(&dir, FsyncPolicy::PerBulk, &db).expect("create");
        run_bulks(&mut durability, &mut db, &reg, 3, 16);
        drop(durability);
        let stale_wal = std::fs::read(dir.join(WAL_FILE)).expect("read old wal");
        // Simulated restart that crashed mid-create: the new checkpoint (of
        // the current state) is written, but the old log survives.
        drop(Durability::create(&dir, FsyncPolicy::PerBulk, &db).expect("re-create"));
        std::fs::write(dir.join(WAL_FILE), &stale_wal).expect("restore stale wal");
        let recovery = recover(&dir).expect("recover");
        assert_eq!(
            recovery.replayed, 0,
            "previous-epoch records must not replay onto the new snapshot"
        );
        assert!(!recovery.torn_tail);
        assert!(
            recovery.db == db,
            "recovery must land on the snapshot state, not a double-applied one"
        );
    }

    #[test]
    fn from_config_respects_disabled() {
        let (db, _reg, _t) = setup(2);
        assert!(Durability::from_config(&DurabilityConfig::disabled(), &db)
            .expect("ok")
            .is_none());
        let dir = tmp_dir("fromcfg");
        let config = DurabilityConfig::at(&dir).with_fsync(FsyncPolicy::Async);
        let durability = Durability::from_config(&config, &db)
            .expect("ok")
            .expect("enabled");
        assert_eq!(durability.next_lsn(), 0);
        assert!(config.enabled());
        assert!(!DurabilityConfig::default().enabled());
    }
}
