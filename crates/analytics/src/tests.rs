//! Unit tests: snapshot correctness, incremental cuts, deterministic scans.

use crate::ops::{count_rows, group_by_i64, sum_f64, sum_i64, GroupRow, Predicate, ScanOptions};
use crate::session::{AnalyticsConfig, AnalyticsSession};
use crate::store::SnapshotStore;
use gputx_durability::{BulkLogRecord, WriteCapture};
use gputx_storage::schema::{ColumnDef, TableSchema};
use gputx_storage::{DataType, Database, Value};
use std::time::Duration;

/// Two-table test database: an Int/Double "accounts" table plus a table
/// with a Str column to exercise the fallback chunk representation.
fn setup(rows: i64) -> Database {
    let mut db = Database::column_store();
    let accounts = db.create_table(TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("region", DataType::Int),
            ColumnDef::new("balance", DataType::Double),
        ],
        vec![0],
    ));
    for i in 0..rows {
        db.table_mut(accounts)
            .insert(vec![Value::Int(i), Value::Int(i % 4), Value::Double(100.0)]);
    }
    let labels = db.create_table(TableSchema::new(
        "labels",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::host_only("tag", DataType::Str),
        ],
        vec![0],
    ));
    for i in 0..4 {
        db.table_mut(labels)
            .insert(vec![Value::Int(i), Value::Str(format!("tag-{i}"))]);
    }
    db
}

/// Run `mutate` against `db` as one captured bulk and return its record —
/// the same capture path the engines use at their group-commit point.
fn bulk(db: &mut Database, lsn: u64, mutate: impl FnOnce(&mut Database)) -> BulkLogRecord {
    let capture = WriteCapture::begin(db);
    mutate(db);
    db.apply_insert_buffers();
    BulkLogRecord {
        lsn,
        write_set: capture.finish(db),
    }
}

#[test]
fn snapshot_matches_mirror_exactly() {
    let mut db = setup(300);
    let mut store = SnapshotStore::new(&db, 64, false);
    let empty = store.freeze();
    empty.check_against(&db).unwrap();

    let r0 = bulk(&mut db, 0, |db| {
        db.table_mut(0).set_f64(7, 2, 250.5);
        db.table_mut(0).delete(11);
        db.table_mut(0)
            .insert(vec![Value::Int(300), Value::Int(1), Value::Double(1.25)]);
        db.table_mut(1).set(2, 1, &Value::Str("renamed".into()));
    });
    store.apply(&r0);
    let snap = store.freeze();
    snap.check_against(&db).unwrap();
    assert_eq!(snap.records_applied(), 1);
    assert_eq!(snap.last_lsn(), Some(0));
    assert_eq!(snap.num_rows(0), 301);
    assert!(!snap.is_live(0, 11));
    assert_eq!(snap.get_f64(0, 7, 2), 250.5);
    assert_eq!(snap.get(1, 2, 1), Value::Str("renamed".into()));
}

#[test]
fn old_snapshots_are_immutable() {
    let mut db = setup(100);
    let mut store = SnapshotStore::new(&db, 32, false);
    let before = store.freeze();
    let r0 = bulk(&mut db, 0, |db| {
        db.table_mut(0).set_f64(3, 2, -1.0);
        db.table_mut(0).delete(40);
    });
    store.apply(&r0);
    let after = store.freeze();
    // The old handle still reads the pre-bulk state.
    assert_eq!(before.get_f64(0, 3, 2), 100.0);
    assert!(before.is_live(0, 40));
    assert_eq!(after.get_f64(0, 3, 2), -1.0);
    assert!(!after.is_live(0, 40));
}

#[test]
fn cuts_rebuild_only_dirty_chunks() {
    let mut db = setup(1000);
    // 32-row chunks => accounts has ceil(1000/32) = 32 chunks per column.
    let mut store = SnapshotStore::new(&db, 32, false);
    let _ = store.freeze();
    let baseline = store.stats().chunks_rebuilt;

    // An idle cut rebuilds nothing.
    let _ = store.freeze();
    assert_eq!(store.stats().chunks_rebuilt, baseline);

    // One field write dirties one column chunk; the cut rebuilds exactly it.
    let r0 = bulk(&mut db, 0, |db| db.table_mut(0).set_f64(5, 2, 7.0));
    store.apply(&r0);
    let _ = store.freeze();
    assert_eq!(store.stats().chunks_rebuilt, baseline + 1);

    // A delete dirties one live chunk only.
    let r1 = bulk(&mut db, 1, |db| db.table_mut(0).delete(999));
    store.apply(&r1);
    let _ = store.freeze();
    assert_eq!(store.stats().chunks_rebuilt, baseline + 2);
}

#[test]
fn appends_rebuild_only_the_tail() {
    let mut db = setup(64);
    let mut store = SnapshotStore::new(&db, 32, false);
    let _ = store.freeze();
    let baseline = store.stats().chunks_rebuilt;
    // One appended row starts chunk 2 of "accounts": 3 column chunks plus
    // one live chunk are rebuilt, nothing else.
    let r0 = bulk(&mut db, 0, |db| {
        db.table_mut(0)
            .insert(vec![Value::Int(64), Value::Int(0), Value::Double(0.5)]);
    });
    store.apply(&r0);
    let snap = store.freeze();
    snap.check_against(&db).unwrap();
    assert_eq!(store.stats().chunks_rebuilt, baseline + 4);
}

#[test]
fn scans_are_deterministic_across_thread_counts() {
    let mut db = setup(5000);
    // Non-trivial doubles so float ordering would show up.
    let r0 = bulk(&mut db, 0, |db| {
        for i in 0..5000u64 {
            db.table_mut(0).set_f64(i, 2, (i as f64) * 0.1 + 0.01);
        }
    });
    let mut store = SnapshotStore::new(&setup(5000), 128, false);
    store.apply(&r0);
    let snap = store.freeze();
    snap.check_against(&db).unwrap();

    let pred = Predicate::I64Between {
        col: 0,
        lo: 100,
        hi: 4200,
    };
    let serial = ScanOptions::sequential();
    for threads in [2, 3, 8] {
        let par = ScanOptions::parallel(threads);
        assert_eq!(
            count_rows(&snap, 0, &pred, serial),
            count_rows(&snap, 0, &pred, par)
        );
        assert_eq!(
            sum_i64(&snap, 0, 1, &pred, serial),
            sum_i64(&snap, 0, 1, &pred, par)
        );
        // Bit-identical, not approximately equal.
        assert_eq!(
            sum_f64(&snap, 0, 2, &pred, serial).to_bits(),
            sum_f64(&snap, 0, 2, &pred, par).to_bits()
        );
        assert_eq!(
            group_by_i64(&snap, 0, 1, 2, &pred, serial),
            group_by_i64(&snap, 0, 1, 2, &pred, par)
        );
    }
}

#[test]
fn database_scan_source_matches_snapshot() {
    let mut db = setup(700);
    let r0 = bulk(&mut db, 0, |db| {
        db.table_mut(0).delete(13);
        db.table_mut(0).set_f64(20, 2, 55.0);
    });
    let mut store = SnapshotStore::new(&setup(700), 64, false);
    store.apply(&r0);
    let snap = store.freeze();

    // The same operators over Database (replica offload path) agree with
    // the snapshot bit for bit.
    let opts = ScanOptions::parallel(4);
    assert_eq!(
        count_rows(&snap, 0, &Predicate::All, opts),
        count_rows(&db, 0, &Predicate::All, opts)
    );
    assert_eq!(
        sum_f64(&snap, 0, 2, &Predicate::All, opts).to_bits(),
        sum_f64(&db, 0, 2, &Predicate::All, opts).to_bits()
    );
    let pred = Predicate::F64AtLeast {
        col: 2,
        bound: 55.0,
    };
    assert_eq!(
        count_rows(&snap, 0, &pred, opts),
        count_rows(&db, 0, &pred, opts)
    );
    assert_eq!(
        group_by_i64(&snap, 0, 1, 2, &Predicate::All, opts),
        group_by_i64(&db, 0, 1, 2, &Predicate::All, opts)
    );
}

#[test]
fn group_by_shape() {
    let db = setup(8);
    let store = SnapshotStore::new(&db, 4, false);
    let mut store = store;
    let snap = store.freeze();
    let groups = group_by_i64(&snap, 0, 1, 2, &Predicate::All, ScanOptions::sequential());
    assert_eq!(
        groups,
        vec![
            GroupRow {
                key: 0,
                rows: 2,
                sum: 200.0
            },
            GroupRow {
                key: 1,
                rows: 2,
                sum: 200.0
            },
            GroupRow {
                key: 2,
                rows: 2,
                sum: 200.0
            },
            GroupRow {
                key: 3,
                rows: 2,
                sum: 200.0
            },
        ]
    );
}

#[test]
fn session_publish_wait_and_replay() {
    let mut db = setup(200);
    let seed = db.clone();
    let session = AnalyticsSession::with_config(
        &seed,
        AnalyticsConfig::default()
            .with_chunk_rows(64)
            .with_retained_records(),
    );
    assert_eq!(session.next_lsn(), 0);

    for lsn in 0..3u64 {
        let record = bulk(&mut db, lsn, |db| {
            db.table_mut(0).set_f64(lsn, 2, 1000.0 + lsn as f64);
        });
        assert_eq!(session.next_lsn(), lsn);
        session.publish(&record);
    }
    assert!(session.wait_applied(3, Duration::from_secs(1)));
    assert!(!session.wait_applied(4, Duration::from_millis(10)));

    let snap = session.snapshot();
    assert_eq!(snap.records_applied(), 3);
    // Serial replay of the retained prefix is exactly the snapshot state.
    let replayed = session.replay_prefix(&seed, 3);
    snap.check_against(&replayed).unwrap();
    assert_eq!(replayed, db);

    let stats = session.stats();
    assert_eq!(stats.records_applied, 3);
    assert!(stats.snapshots >= 1);
}

#[test]
fn snapshot_outlives_session() {
    let mut db = setup(50);
    let session = AnalyticsSession::new(&db);
    let record = bulk(&mut db, 0, |db| db.table_mut(0).set_i64(10, 1, 99));
    session.publish(&record);
    let snap = session.snapshot();
    drop(session);
    assert_eq!(snap.get_i64(0, 10, 1), 99);
    snap.check_against(&db).unwrap();
}
