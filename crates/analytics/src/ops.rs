//! Scan and aggregate operators over a [`ScanSource`].
//!
//! The operators are deliberately source-agnostic: [`ScanSource`] is
//! implemented both for [`SnapshotHandle`] (the local HTAP read path) and
//! for [`Database`] (so the *same* scan runs against a replica's
//! `snapshot_db()` — replica offload — or against a serially replayed
//! reference state in the consistency harness).
//!
//! ## Determinism
//!
//! Floating-point addition is not associative, so a naive parallel sum would
//! depend on the thread count. Every operator here instead works on
//! fixed-size *blocks* of [`SCAN_BLOCK_ROWS`] rows: each block produces a
//! partial independently, and partials are reduced **in block order**
//! regardless of how blocks were assigned to threads. A scan with
//! `threads = 8` is therefore bit-identical to the same scan with
//! `threads = 1`, which is what lets the HTAP harness hard-assert equality
//! between concurrent scans and their serial replay.

use crate::snapshot::SnapshotHandle;
use gputx_storage::catalog::TableId;
use gputx_storage::{Database, RowId};

/// Rows per scan block — the unit of parallel partitioning *and* of the
/// deterministic reduction order.
pub const SCAN_BLOCK_ROWS: usize = 1024;

/// Anything the scan operators can read: a frozen snapshot, a live (but
/// externally quiesced) database, or a replica's reconstructed state.
pub trait ScanSource: Sync {
    /// Total rows (live and deleted) in `table`.
    fn source_rows(&self, table: TableId) -> usize;
    /// Whether `row` is live (not deleted).
    fn source_is_live(&self, table: TableId, row: RowId) -> bool;
    /// Read an `Int` column.
    fn source_i64(&self, table: TableId, row: RowId, col: usize) -> i64;
    /// Read a numeric column as `f64` (`Int` widens).
    fn source_f64(&self, table: TableId, row: RowId, col: usize) -> f64;
}

impl ScanSource for SnapshotHandle {
    fn source_rows(&self, table: TableId) -> usize {
        self.num_rows(table)
    }
    fn source_is_live(&self, table: TableId, row: RowId) -> bool {
        self.is_live(table, row)
    }
    fn source_i64(&self, table: TableId, row: RowId, col: usize) -> i64 {
        self.get_i64(table, row, col)
    }
    fn source_f64(&self, table: TableId, row: RowId, col: usize) -> f64 {
        self.get_f64(table, row, col)
    }
}

impl ScanSource for Database {
    fn source_rows(&self, table: TableId) -> usize {
        self.table(table).num_rows()
    }
    fn source_is_live(&self, table: TableId, row: RowId) -> bool {
        !self.table(table).is_deleted(row)
    }
    fn source_i64(&self, table: TableId, row: RowId, col: usize) -> i64 {
        self.table(table).get_i64(row, col)
    }
    fn source_f64(&self, table: TableId, row: RowId, col: usize) -> f64 {
        self.table(table).get_f64(row, col)
    }
}

/// Row filter applied by every operator (deleted rows are always skipped).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Every live row matches.
    All,
    /// `Int` column equals a value.
    I64Eq {
        /// Column index.
        col: usize,
        /// Value to match.
        value: i64,
    },
    /// `Int` column within an inclusive range.
    I64Between {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Numeric column at least a bound (`Int` widens to `f64`).
    F64AtLeast {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        bound: f64,
    },
}

impl Predicate {
    fn matches<S: ScanSource + ?Sized>(&self, src: &S, table: TableId, row: RowId) -> bool {
        match *self {
            Predicate::All => true,
            Predicate::I64Eq { col, value } => src.source_i64(table, row, col) == value,
            Predicate::I64Between { col, lo, hi } => {
                let v = src.source_i64(table, row, col);
                lo <= v && v <= hi
            }
            Predicate::F64AtLeast { col, bound } => src.source_f64(table, row, col) >= bound,
        }
    }
}

/// Execution options for a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads; `0` or `1` scans sequentially on the caller's thread.
    pub threads: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { threads: 1 }
    }
}

impl ScanOptions {
    /// Sequential scan on the calling thread.
    pub fn sequential() -> Self {
        ScanOptions { threads: 1 }
    }

    /// Scan partitioned across `threads` scoped worker threads.
    pub fn parallel(threads: usize) -> Self {
        ScanOptions { threads }
    }
}

/// One output row of [`group_by_i64`], ordered by ascending key.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Grouping key.
    pub key: i64,
    /// Matching live rows in the group.
    pub rows: u64,
    /// Block-ordered sum of the aggregated column over the group.
    pub sum: f64,
}

/// Map every scan block of `table` through `per_block`, in parallel when
/// requested, and return the per-block results **in block order**.
fn map_blocks<S, T, F>(src: &S, table: TableId, opts: ScanOptions, per_block: F) -> Vec<T>
where
    S: ScanSource + ?Sized,
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let rows = src.source_rows(table);
    let nblocks = rows.div_ceil(SCAN_BLOCK_ROWS);
    let block_range = |b: usize| b * SCAN_BLOCK_ROWS..rows.min((b + 1) * SCAN_BLOCK_ROWS);
    if opts.threads <= 1 || nblocks <= 1 {
        return (0..nblocks).map(|b| per_block(block_range(b))).collect();
    }
    // Same partitioning rule as the bulk executor's conflict-free fan-out;
    // each worker produces its blocks in order and the spans are stitched
    // back in block order, so the reduction order never depends on threads.
    let spans = gputx_exec::partition_ranges(nblocks, opts.threads);
    let mut out: Vec<T> = Vec::with_capacity(nblocks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|span| {
                let per_block = &per_block;
                let span = span.clone();
                scope.spawn(move || span.map(block_range).map(per_block).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("scan worker panicked"));
        }
    });
    out
}

/// Count live rows of `table` matching `pred`.
pub fn count_rows<S: ScanSource + ?Sized>(
    src: &S,
    table: TableId,
    pred: &Predicate,
    opts: ScanOptions,
) -> u64 {
    map_blocks(src, table, opts, |range| {
        let mut n = 0u64;
        for row in range {
            let row = row as RowId;
            if src.source_is_live(table, row) && pred.matches(src, table, row) {
                n += 1;
            }
        }
        n
    })
    .into_iter()
    .sum()
}

/// Sum an `Int` column over live rows matching `pred` (wrapping on
/// overflow, like the storage engine's own counters).
pub fn sum_i64<S: ScanSource + ?Sized>(
    src: &S,
    table: TableId,
    col: usize,
    pred: &Predicate,
    opts: ScanOptions,
) -> i64 {
    map_blocks(src, table, opts, |range| {
        let mut acc = 0i64;
        for row in range {
            let row = row as RowId;
            if src.source_is_live(table, row) && pred.matches(src, table, row) {
                acc = acc.wrapping_add(src.source_i64(table, row, col));
            }
        }
        acc
    })
    .into_iter()
    .fold(0i64, |a, b| a.wrapping_add(b))
}

/// Sum a numeric column as `f64` over live rows matching `pred`.
/// Bit-deterministic for every thread count (block-ordered reduction).
pub fn sum_f64<S: ScanSource + ?Sized>(
    src: &S,
    table: TableId,
    col: usize,
    pred: &Predicate,
    opts: ScanOptions,
) -> f64 {
    map_blocks(src, table, opts, |range| {
        let mut acc = 0f64;
        for row in range {
            let row = row as RowId;
            if src.source_is_live(table, row) && pred.matches(src, table, row) {
                acc += src.source_f64(table, row, col);
            }
        }
        acc
    })
    .into_iter()
    .sum()
}

/// Group live rows matching `pred` by an `Int` key column and aggregate
/// count + `f64` sum of `sum_col` per group. Output is sorted by key;
/// per-group sums reduce in block order, so the result is bit-identical for
/// every thread count.
pub fn group_by_i64<S: ScanSource + ?Sized>(
    src: &S,
    table: TableId,
    key_col: usize,
    sum_col: usize,
    pred: &Predicate,
    opts: ScanOptions,
) -> Vec<GroupRow> {
    use std::collections::BTreeMap;
    let partials = map_blocks(src, table, opts, |range| {
        let mut groups: BTreeMap<i64, (u64, f64)> = BTreeMap::new();
        for row in range {
            let row = row as RowId;
            if src.source_is_live(table, row) && pred.matches(src, table, row) {
                let entry = groups
                    .entry(src.source_i64(table, row, key_col))
                    .or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += src.source_f64(table, row, sum_col);
            }
        }
        groups
    });
    let mut merged: BTreeMap<i64, (u64, f64)> = BTreeMap::new();
    for block in partials {
        for (key, (rows, sum)) in block {
            let entry = merged.entry(key).or_insert((0, 0.0));
            entry.0 += rows;
            entry.1 += sum;
        }
    }
    merged
        .into_iter()
        .map(|(key, (rows, sum))| GroupRow { key, rows, sum })
        .collect()
}
