//! The engine-facing analytics endpoint.
//!
//! An [`AnalyticsSession`] is the handle `EngineBuilder::analytics()` (in
//! `gputx-core`) clones into the engine: the engine's commit stage calls
//! [`publish`](AnalyticsSession::publish) with every committed
//! [`BulkLogRecord`] — the same record the WAL appends and the replication
//! hub ships — while any number of scanner threads hold their own clones and
//! call [`snapshot`](AnalyticsSession::snapshot) whenever they want a fresh
//! consistent cut.
//!
//! Update propagation (`publish`) runs inline at the group-commit point and
//! only replays the redo record into the mirror plus marks dirty chunks;
//! the chunk rebuild cost is paid by the *scanner* at cut time. Because the
//! session is an `Arc` shared by engine and scanners, it — and every
//! snapshot cut from it — outlives engine shutdown.

use crate::snapshot::SnapshotHandle;
use crate::store::{SnapshotStore, StoreStats, DEFAULT_CHUNK_ROWS};
use gputx_durability::BulkLogRecord;
use gputx_storage::Database;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for an [`AnalyticsSession`].
#[derive(Debug, Clone)]
pub struct AnalyticsConfig {
    /// Rows per copy-on-write chunk (and snapshot access granularity).
    /// Smaller chunks mean finer dirty tracking but more `Arc` overhead.
    pub chunk_rows: usize,
    /// Keep a copy of every published record so verifiers can serially
    /// replay the exact committed prefix a snapshot froze. Off by default —
    /// it grows without bound and exists for tests and the HTAP harness.
    pub retain_records: bool,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        AnalyticsConfig {
            chunk_rows: DEFAULT_CHUNK_ROWS,
            retain_records: false,
        }
    }
}

impl AnalyticsConfig {
    /// Override the copy-on-write chunk size.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows;
        self
    }

    /// Retain published records for serial-replay verification.
    pub fn with_retained_records(mut self) -> Self {
        self.retain_records = true;
        self
    }
}

/// Work counters of a session, in microseconds where timed. A thin
/// published view over [`StoreStats`].
#[derive(Debug, Default, Clone)]
pub struct AnalyticsStats {
    /// Committed bulk records folded into the mirror.
    pub records_applied: u64,
    /// Snapshots cut so far.
    pub snapshots: u64,
    /// Column/live chunks rebuilt across all cuts.
    pub chunks_rebuilt: u64,
    /// Cumulative update-propagation time in microseconds.
    pub apply_us: f64,
    /// Cumulative chunk-rebuild time across cuts, in microseconds.
    pub refresh_us: f64,
    /// Cost of the most recent snapshot cut, in microseconds.
    pub last_cut_us: f64,
}

impl From<StoreStats> for AnalyticsStats {
    fn from(s: StoreStats) -> Self {
        AnalyticsStats {
            records_applied: s.records_applied,
            snapshots: s.snapshots,
            chunks_rebuilt: s.chunks_rebuilt,
            apply_us: s.apply_nanos as f64 / 1_000.0,
            refresh_us: s.refresh_nanos as f64 / 1_000.0,
            last_cut_us: s.last_cut_nanos as f64 / 1_000.0,
        }
    }
}

struct Shared {
    store: Mutex<SnapshotStore>,
    applied: Condvar,
}

/// Cloneable endpoint connecting one engine (publisher) to any number of
/// scanner threads (snapshot consumers). See the [module docs](self).
#[derive(Clone)]
pub struct AnalyticsSession {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for AnalyticsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyticsSession")
            .field("records_applied", &self.records_applied())
            .finish()
    }
}

impl AnalyticsSession {
    /// Session with default configuration over a starting database state.
    pub fn new(seed: &Database) -> Self {
        Self::with_config(seed, AnalyticsConfig::default())
    }

    /// Session with explicit configuration over a starting database state.
    pub fn with_config(seed: &Database, config: AnalyticsConfig) -> Self {
        AnalyticsSession {
            shared: Arc::new(Shared {
                store: Mutex::new(SnapshotStore::new(
                    seed,
                    config.chunk_rows,
                    config.retain_records,
                )),
                applied: Condvar::new(),
            }),
        }
    }

    /// Fold one committed bulk record into the session. Called by the
    /// engine's commit stage, in commit order.
    pub fn publish(&self, record: &BulkLogRecord) {
        let mut store = self.shared.store.lock().expect("analytics store poisoned");
        store.apply(record);
        self.shared.applied.notify_all();
    }

    /// The LSN the next published record should carry, when this session is
    /// the engine's only log consumer.
    pub fn next_lsn(&self) -> u64 {
        self.shared
            .store
            .lock()
            .expect("analytics store poisoned")
            .next_lsn()
    }

    /// Committed bulk records folded in so far.
    pub fn records_applied(&self) -> u64 {
        self.shared
            .store
            .lock()
            .expect("analytics store poisoned")
            .records_applied()
    }

    /// Block until at least `records` bulk records have been folded in.
    /// Returns `false` on timeout.
    pub fn wait_applied(&self, records: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut store = self.shared.store.lock().expect("analytics store poisoned");
        while store.records_applied() < records {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, result) = self
                .shared
                .applied
                .wait_timeout(store, left)
                .expect("analytics store poisoned");
            store = guard;
            if result.timed_out() && store.records_applied() < records {
                return false;
            }
        }
        true
    }

    /// Cut a consistent snapshot of the committed prefix right now.
    pub fn snapshot(&self) -> SnapshotHandle {
        self.shared
            .store
            .lock()
            .expect("analytics store poisoned")
            .freeze()
    }

    /// Work counters.
    pub fn stats(&self) -> AnalyticsStats {
        self.shared
            .store
            .lock()
            .expect("analytics store poisoned")
            .stats()
            .into()
    }

    /// Copies of every published record (requires
    /// [`AnalyticsConfig::retain_records`]). Verifiers replay a prefix of
    /// these serially to prove snapshot consistency.
    pub fn retained_records(&self) -> Vec<BulkLogRecord> {
        self.shared
            .store
            .lock()
            .expect("analytics store poisoned")
            .retained_records()
    }

    /// Serially replay the first `records` retained records onto a clone of
    /// `seed` and return the resulting database — the reference state the
    /// snapshot with `records_applied() == records` must equal.
    pub fn replay_prefix(&self, seed: &Database, records: u64) -> Database {
        let retained = self.retained_records();
        assert!(
            records as usize <= retained.len(),
            "cannot replay {records} records, only {} retained",
            retained.len()
        );
        let mut db = seed.clone();
        for record in retained.into_iter().take(records as usize) {
            record.replay_into(&mut db);
        }
        db
    }
}
