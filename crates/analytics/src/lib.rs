//! # gputx-analytics — the HTAP read path
//!
//! GPUTx commits whole *bulks* atomically, which makes the bulk boundary the
//! natural consistency point for analytics: between two bulks the database is
//! exactly "the committed prefix after N bulks", never a half-applied
//! transaction. This crate turns that observation into a concurrent read
//! path, following the Polynesia blueprint (arxiv 2103.00798, 2204.11275) of
//! isolating *update propagation* from *analytical execution*:
//!
//! * [`session`] — the [`AnalyticsSession`] an engine publishes committed
//!   bulk records into ([`EngineBuilder::analytics`] in `gputx-core` wires it
//!   to the group-commit point). Update propagation replays each record into
//!   a private mirror database — the exact redo path crash recovery and
//!   replication use — and marks which copy-on-write chunks the record
//!   touched.
//! * [`store`] — the chunked snapshot store behind the session: per-column
//!   `Arc`'d chunks rebuilt lazily (only dirty chunks, only when a snapshot
//!   is cut), so cut cost is proportional to data churned since the last
//!   cut, not to database size.
//! * [`snapshot`] — the [`SnapshotHandle`]: an immutable committed-prefix
//!   view made of shared chunks. Holding one costs nothing to the write
//!   path; it stays readable after the engine shuts down or later snapshots
//!   supersede it.
//! * [`ops`] — a small scan/aggregate operator set (predicate scan,
//!   count/sum/group-by over the typed `get_i64`/`get_f64` accessors) over a
//!   [`ScanSource`] abstraction, so the same scan runs against a local
//!   snapshot or a replica's `snapshot_db()` (replica offload). Parallel
//!   scans partition fixed-size row blocks across threads with the
//!   executor's `partition_ranges` rule and reduce partials in block order,
//!   so every aggregate is bit-deterministic for every thread count.
//!
//! The consistency guarantee and its verification harness are documented in
//! `docs/htap.md`; `tests/htap_consistency.rs` asserts scans under load equal
//! a serial replay of the frozen committed prefix.
//!
//! [`EngineBuilder::analytics`]: https://docs.rs/gputx-core
//! [`AnalyticsSession`]: session::AnalyticsSession
//! [`SnapshotHandle`]: snapshot::SnapshotHandle
//! [`ScanSource`]: ops::ScanSource

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ops;
pub mod session;
pub mod snapshot;
pub mod store;

#[cfg(test)]
mod tests;

pub use ops::{
    count_rows, group_by_i64, sum_f64, sum_i64, GroupRow, Predicate, ScanOptions, ScanSource,
};
pub use session::{AnalyticsConfig, AnalyticsSession, AnalyticsStats};
pub use snapshot::SnapshotHandle;
