//! Immutable committed-prefix snapshots made of shared column chunks.
//!
//! A [`SnapshotHandle`] is cut at a bulk boundary by
//! [`SnapshotStore::freeze`](crate::store::SnapshotStore) and freezes the
//! state "after exactly N committed bulks". The handle owns nothing but
//! `Arc`s to fixed-size column chunks, so:
//!
//! * cutting it is O(number of chunks) pointer copies — the data itself is
//!   shared with the store's cache and with other snapshots;
//! * holding it never blocks the write path: the store rebuilds *new* chunks
//!   for churned regions, old snapshots keep the old ones alive;
//! * it stays valid after the engine, the session and the store are gone.

use gputx_storage::catalog::TableId;
use gputx_storage::{Database, RowId, Value};
use std::sync::Arc;

/// One fixed-size run of column values, typed by the column's declared
/// [`DataType`](gputx_storage::DataType) so scans hit dense `i64`/`f64`
/// vectors instead of boxed [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ColChunk {
    /// Dense chunk of an `Int` column.
    Int(Vec<i64>),
    /// Dense chunk of a `Double` column.
    Double(Vec<f64>),
    /// Fallback representation for `Str` (and any future) columns.
    Other(Vec<Value>),
}

/// The frozen image of one table: its chunked columns plus chunked live
/// flags. Shared (as the element type of `Vec<Arc<_>>`) between the store's
/// working cache and every snapshot cut from it.
#[derive(Debug, Clone)]
pub(crate) struct FrozenTable {
    /// Table name, for name-based lookup on the handle.
    pub name: String,
    /// Rows covered by the frozen image (committed rows at the cut).
    pub rows: usize,
    /// `cols[c][i]` = chunk `i` of column `c`.
    pub cols: Vec<Vec<Arc<ColChunk>>>,
    /// `live[i][r]` = liveness of row `i * chunk_rows + r`.
    pub live: Vec<Arc<Vec<bool>>>,
}

#[derive(Debug)]
pub(crate) struct FrozenView {
    pub tables: Vec<FrozenTable>,
    pub chunk_rows: usize,
    pub records_applied: u64,
    pub last_lsn: Option<u64>,
}

/// A consistent, immutable view of the database after exactly
/// [`records_applied`](SnapshotHandle::records_applied) committed bulks.
///
/// Cloning the handle is an `Arc` bump; all clones share the same frozen
/// chunks. The handle implements [`ScanSource`](crate::ops::ScanSource), so
/// every operator in [`ops`](crate::ops) runs against it directly.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    inner: Arc<FrozenView>,
}

impl SnapshotHandle {
    pub(crate) fn new(view: FrozenView) -> Self {
        SnapshotHandle {
            inner: Arc::new(view),
        }
    }

    /// Number of committed bulk records folded into this snapshot.
    pub fn records_applied(&self) -> u64 {
        self.inner.records_applied
    }

    /// LSN of the last bulk record folded in, if any bulk committed yet.
    pub fn last_lsn(&self) -> Option<u64> {
        self.inner.last_lsn
    }

    /// Number of tables in the snapshot.
    pub fn num_tables(&self) -> usize {
        self.inner.tables.len()
    }

    /// Resolve a table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner
            .tables
            .iter()
            .position(|t| t.name == name)
            .map(|p| p as TableId)
    }

    /// Name of a table.
    pub fn table_name(&self, table: TableId) -> &str {
        &self.inner.tables[table as usize].name
    }

    /// Total rows (live and deleted) frozen for `table`.
    pub fn num_rows(&self, table: TableId) -> usize {
        self.inner.tables[table as usize].rows
    }

    /// Whether a frozen row is live (not deleted) in this snapshot.
    pub fn is_live(&self, table: TableId, row: RowId) -> bool {
        let (chunk, off) = self.split(row);
        self.inner.tables[table as usize].live[chunk][off]
    }

    /// Read an `Int` column without boxing. Panics if the column is not an
    /// `Int` column, mirroring the storage accessors.
    pub fn get_i64(&self, table: TableId, row: RowId, col: usize) -> i64 {
        let (chunk, off) = self.split(row);
        match &*self.inner.tables[table as usize].cols[col][chunk] {
            ColChunk::Int(v) => v[off],
            ColChunk::Double(_) | ColChunk::Other(_) => {
                panic!("get_i64 on non-Int column {col} of table {table}")
            }
        }
    }

    /// Read a numeric column as `f64`; `Int` values widen, like
    /// [`Value::as_double`](gputx_storage::Value::as_double).
    pub fn get_f64(&self, table: TableId, row: RowId, col: usize) -> f64 {
        let (chunk, off) = self.split(row);
        match &*self.inner.tables[table as usize].cols[col][chunk] {
            ColChunk::Double(v) => v[off],
            ColChunk::Int(v) => v[off] as f64,
            ColChunk::Other(_) => panic!("get_f64 on non-numeric column {col} of table {table}"),
        }
    }

    /// Read any column as a boxed [`Value`].
    pub fn get(&self, table: TableId, row: RowId, col: usize) -> Value {
        let (chunk, off) = self.split(row);
        match &*self.inner.tables[table as usize].cols[col][chunk] {
            ColChunk::Int(v) => Value::Int(v[off]),
            ColChunk::Double(v) => Value::Double(v[off]),
            ColChunk::Other(v) => v[off].clone(),
        }
    }

    /// Full-fidelity comparison against a reference database — every table,
    /// row, live flag and cell. Returns the first mismatch as an error
    /// string. The HTAP consistency harness replays the committed prefix
    /// serially and calls this to prove the snapshot is exactly that prefix.
    pub fn check_against(&self, db: &Database) -> Result<(), String> {
        if self.num_tables() != db.num_tables() {
            return Err(format!(
                "table count mismatch: snapshot {} vs reference {}",
                self.num_tables(),
                db.num_tables()
            ));
        }
        for t in 0..db.num_tables() as TableId {
            let tbl = db.table(t);
            let name = self.table_name(t);
            if name != tbl.schema().name {
                return Err(format!(
                    "table {t} name mismatch: snapshot {name:?} vs reference {:?}",
                    tbl.schema().name
                ));
            }
            if self.num_rows(t) != tbl.num_rows() {
                return Err(format!(
                    "table {name}: row count mismatch: snapshot {} vs reference {}",
                    self.num_rows(t),
                    tbl.num_rows()
                ));
            }
            let cols = tbl.schema().num_columns();
            if self.inner.tables[t as usize].cols.len() != cols {
                return Err(format!(
                    "table {name}: column count mismatch: snapshot {} vs reference {cols}",
                    self.inner.tables[t as usize].cols.len()
                ));
            }
            for row in 0..tbl.num_rows() as RowId {
                if self.is_live(t, row) == tbl.is_deleted(row) {
                    return Err(format!(
                        "table {name} row {row}: live flag mismatch: snapshot {} vs reference {}",
                        self.is_live(t, row),
                        !tbl.is_deleted(row)
                    ));
                }
                for col in 0..cols {
                    let ours = self.get(t, row, col);
                    let theirs = tbl.get(row, col);
                    if ours != theirs {
                        return Err(format!(
                            "table {name} row {row} col {col}: {ours:?} vs reference {theirs:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn split(&self, row: RowId) -> (usize, usize) {
        let row = row as usize;
        (row / self.inner.chunk_rows, row % self.inner.chunk_rows)
    }
}
