//! The chunked copy-on-write snapshot store behind an analytics session.
//!
//! The store separates *update propagation* from *snapshot cutting*:
//!
//! 1. [`SnapshotStore::apply`] folds one committed [`BulkLogRecord`] into a
//!    private mirror [`Database`] via the same
//!    [`replay_into`](BulkLogRecord::replay_into) path crash recovery and
//!    replication use, and marks the copy-on-write chunks the record's
//!    write-set touched. This runs at the engine's group-commit point and is
//!    cheap: a redo replay plus hash-set inserts.
//! 2. [`SnapshotStore::freeze`] (called by a scanner, off the commit path)
//!    first refreshes the chunk cache — rebuilding *only* chunks that are
//!    dirty or extend past the previously frozen row count — then hands out
//!    a [`SnapshotHandle`] sharing every chunk by `Arc`. Cut cost is
//!    proportional to data churned since the last cut, not to database size.
//!
//! Insert handling needs no write-set introspection: `apply_insert_buffers`
//! only appends rows at the table tail, so every chunk past the previously
//! frozen row count is rebuilt anyway. Updates and deletes inside a bulk can
//! only target rows that existed before the bulk (buffered inserts have no
//! `RowId` until applied), so marking `row / chunk_rows` is always in range
//! of the next refresh.

use crate::snapshot::{ColChunk, FrozenTable, FrozenView, SnapshotHandle};
use gputx_durability::BulkLogRecord;
use gputx_storage::shard::FxHashSet;
use gputx_storage::{DataType, Database, RowId, Table};
use std::sync::Arc;
use std::time::Instant;

/// Default rows per copy-on-write chunk (and per scan block).
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

/// Dirty state accumulated for one table since the last refresh.
#[derive(Debug, Default)]
struct TableDirty {
    /// `(col, chunk)` pairs whose data chunk must be rebuilt.
    cells: FxHashSet<(u32, usize)>,
    /// Chunk indexes whose live-flag chunk must be rebuilt.
    live: FxHashSet<usize>,
}

/// Counters describing the work the store has done. Snapshot-cut cost is
/// what the HTAP experiment reports; the rebuild counter is what the unit
/// tests use to prove cuts are incremental.
#[derive(Debug, Default, Clone)]
pub struct StoreStats {
    /// Committed bulk records folded into the mirror.
    pub records_applied: u64,
    /// Snapshots cut so far.
    pub snapshots: u64,
    /// Column/live chunks rebuilt across all refreshes.
    pub chunks_rebuilt: u64,
    /// Cumulative update-propagation time (mirror replay + dirty marking).
    pub apply_nanos: u64,
    /// Cumulative chunk-rebuild time across all snapshot cuts.
    pub refresh_nanos: u64,
    /// Refresh + freeze time of the most recent snapshot cut.
    pub last_cut_nanos: u64,
}

/// Mirror database + chunked COW cache + dirty tracking. Owned by
/// [`AnalyticsSession`](crate::session::AnalyticsSession) behind a mutex;
/// exposed for direct use in tests and single-threaded tools.
#[derive(Debug)]
pub struct SnapshotStore {
    chunk_rows: usize,
    mirror: Database,
    frozen: Vec<FrozenTable>,
    dirty: Vec<TableDirty>,
    records_applied: u64,
    last_lsn: Option<u64>,
    retained: Option<Vec<BulkLogRecord>>,
    stats: StoreStats,
}

impl SnapshotStore {
    /// Build a store over a starting database state (bulk count zero).
    ///
    /// `retain_records` keeps a copy of every applied record so a verifier
    /// can replay the same committed prefix serially (see
    /// [`retained_records`](Self::retained_records)).
    pub fn new(seed: &Database, chunk_rows: usize, retain_records: bool) -> Self {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let mut store = SnapshotStore {
            chunk_rows,
            mirror: seed.clone(),
            frozen: Vec::new(),
            dirty: Vec::new(),
            records_applied: 0,
            last_lsn: None,
            retained: retain_records.then(Vec::new),
            stats: StoreStats::default(),
        };
        store.sync_table_lists();
        store.refresh();
        store
    }

    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Committed bulk records folded in so far.
    pub fn records_applied(&self) -> u64 {
        self.records_applied
    }

    /// The LSN the *next* published record is expected to carry, used when
    /// the analytics session is the engine's only log consumer.
    pub fn next_lsn(&self) -> u64 {
        self.last_lsn.map_or(self.records_applied, |l| l + 1)
    }

    /// Work counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.clone()
    }

    /// Copies of every record applied so far (requires `retain_records`).
    pub fn retained_records(&self) -> Vec<BulkLogRecord> {
        self.retained
            .as_ref()
            .expect("retain_records not enabled on this store")
            .clone()
    }

    /// Fold one committed bulk record into the mirror and mark the chunks it
    /// dirtied. Must be called in commit order — the engine's group-commit
    /// point guarantees that.
    pub fn apply(&mut self, record: &BulkLogRecord) {
        let t0 = Instant::now();
        self.sync_table_lists();
        // Mark dirty chunks from the write-set BEFORE replaying: replay
        // consumes (drains) the record's delta, so it works on a clone.
        let chunk_rows = self.chunk_rows;
        record.write_set.for_each_updated_field(|table, row, col| {
            self.dirty[table as usize]
                .cells
                .insert((col, row as usize / chunk_rows));
        });
        record.write_set.for_each_delete_flag(|table, row, _live| {
            self.dirty[table as usize]
                .live
                .insert(row as usize / chunk_rows);
        });
        if let Some(kept) = self.retained.as_mut() {
            kept.push(record.clone());
        }
        record.clone().replay_into(&mut self.mirror);
        self.records_applied += 1;
        self.last_lsn = Some(record.lsn);
        self.stats.records_applied = self.records_applied;
        self.stats.apply_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Cut a consistent snapshot of the current committed prefix: refresh
    /// dirty chunks, then freeze the cache into a [`SnapshotHandle`] of
    /// shared `Arc` chunks.
    pub fn freeze(&mut self) -> SnapshotHandle {
        let t0 = Instant::now();
        self.refresh();
        let handle = SnapshotHandle::new(FrozenView {
            tables: self.frozen.clone(),
            chunk_rows: self.chunk_rows,
            records_applied: self.records_applied,
            last_lsn: self.last_lsn,
        });
        self.stats.snapshots += 1;
        self.stats.last_cut_nanos = t0.elapsed().as_nanos() as u64;
        handle
    }

    /// A full copy of the mirror database — the committed prefix in its
    /// native representation. Used by tests as a serial-replay reference.
    pub fn mirror_clone(&self) -> Database {
        self.mirror.clone()
    }

    fn sync_table_lists(&mut self) {
        while self.frozen.len() < self.mirror.num_tables() {
            let tbl = self.mirror.table(self.frozen.len() as u32);
            self.frozen.push(FrozenTable {
                name: tbl.schema().name.clone(),
                rows: 0,
                cols: vec![Vec::new(); tbl.schema().num_columns()],
                live: Vec::new(),
            });
            self.dirty.push(TableDirty::default());
        }
    }

    /// Rebuild exactly the chunks invalidated since the last refresh: chunks
    /// marked dirty by [`apply`](Self::apply) and chunks extending past the
    /// previously frozen row count (appended rows, including the old partial
    /// tail chunk).
    fn refresh(&mut self) {
        let t0 = Instant::now();
        self.sync_table_lists();
        let mut rebuilt = 0u64;
        for t in 0..self.frozen.len() {
            let tbl = self.mirror.table(t as u32);
            let frozen = &mut self.frozen[t];
            let dirty = &mut self.dirty[t];
            let rows = tbl.num_rows();
            if rows == frozen.rows && dirty.cells.is_empty() && dirty.live.is_empty() {
                continue;
            }
            let nchunks = rows.div_ceil(self.chunk_rows);
            for (c, coldef) in tbl.schema().columns.iter().enumerate() {
                let old = &frozen.cols[c];
                let mut chunks = Vec::with_capacity(nchunks);
                for i in 0..nchunks {
                    let start = i * self.chunk_rows;
                    let end = rows.min(start + self.chunk_rows);
                    let clean = end <= frozen.rows
                        && i < old.len()
                        && !dirty.cells.contains(&(c as u32, i));
                    if clean {
                        chunks.push(old[i].clone());
                    } else {
                        rebuilt += 1;
                        chunks.push(Arc::new(build_chunk(tbl, coldef.data_type, c, start, end)));
                    }
                }
                frozen.cols[c] = chunks;
            }
            let mut live = Vec::with_capacity(nchunks);
            for i in 0..nchunks {
                let start = i * self.chunk_rows;
                let end = rows.min(start + self.chunk_rows);
                let clean = end <= frozen.rows && i < frozen.live.len() && !dirty.live.contains(&i);
                if clean {
                    live.push(frozen.live[i].clone());
                } else {
                    rebuilt += 1;
                    live.push(Arc::new(
                        (start..end).map(|r| !tbl.is_deleted(r as RowId)).collect(),
                    ));
                }
            }
            frozen.live = live;
            frozen.rows = rows;
            dirty.cells.clear();
            dirty.live.clear();
        }
        self.stats.chunks_rebuilt += rebuilt;
        self.stats.refresh_nanos += t0.elapsed().as_nanos() as u64;
    }
}

fn build_chunk(tbl: &Table, ty: DataType, col: usize, start: usize, end: usize) -> ColChunk {
    match ty {
        DataType::Int => {
            ColChunk::Int((start..end).map(|r| tbl.get_i64(r as RowId, col)).collect())
        }
        DataType::Double => {
            ColChunk::Double((start..end).map(|r| tbl.get_f64(r as RowId, col)).collect())
        }
        DataType::Str => ColChunk::Other((start..end).map(|r| tbl.get(r as RowId, col)).collect()),
    }
}
