//! Bulks and per-bulk execution reports.

use crate::strategy::StrategyKind;
use gputx_sim::{SimDuration, Throughput};
use gputx_txn::{TxnId, TxnOutcome, TxnSignature};
use serde::{Deserialize, Serialize};

/// A bulk: the set of transactions executed as a single GPU task (§3.1).
#[derive(Debug, Clone, Default)]
pub struct Bulk {
    /// The transaction signatures, in submission (timestamp) order.
    pub txns: Vec<TxnSignature>,
}

impl Bulk {
    /// Create a bulk from signatures (sorted by id to honour the timestamp
    /// order of Definition 1).
    ///
    /// The sort is stable (`sort_by_key` never reorders equal keys), so even
    /// a malformed submission with duplicate ids keeps its submission order
    /// rather than being reshuffled. Duplicate ids are still a caller bug —
    /// they would make the batched-insert tag order ambiguous — so debug
    /// builds reject them outright.
    pub fn new(mut txns: Vec<TxnSignature>) -> Self {
        txns.sort_by_key(|t| t.id);
        debug_assert!(
            txns.windows(2).all(|w| w[0].id != w[1].id),
            "duplicate transaction ids submitted in one bulk"
        );
        Bulk { txns }
    }

    /// Number of transactions in the bulk.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True when the bulk is empty.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Total wire size of the bulk's parameters (host→device transfer).
    pub fn wire_bytes(&self) -> u64 {
        self.txns.iter().map(|t| t.wire_bytes()).sum()
    }
}

/// Timing and outcome report of one bulk execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BulkReport {
    /// Strategy that executed the bulk.
    pub strategy: StrategyKind,
    /// Number of transactions in the bulk.
    pub transactions: usize,
    /// Bulk generation time (sorting / rank computation / grouping) — the
    /// "sort" component of the paper's Figure 5.
    pub generation: SimDuration,
    /// Kernel execution time — the "execution" component of Figure 5.
    pub execution: SimDuration,
    /// Host↔device transfer time for bulk inputs and results (Figure 16's
    /// "input" + "output" components).
    pub transfer: SimDuration,
    /// Number of committed transactions.
    pub committed: usize,
    /// Number of aborted transactions.
    pub aborted: usize,
    /// Per-transaction outcomes (id, outcome).
    #[serde(skip)]
    pub outcomes: Vec<(TxnId, TxnOutcome)>,
}

impl BulkReport {
    /// Total elapsed simulated time for the bulk.
    pub fn total(&self) -> SimDuration {
        self.generation + self.execution + self.transfer
    }

    /// Bulk throughput in transactions per second.
    pub fn throughput(&self) -> Throughput {
        Throughput::from_count(self.transactions as u64, self.total())
    }

    /// Fraction of the total time spent generating the bulk.
    pub fn generation_fraction(&self) -> f64 {
        if self.total().is_zero() {
            0.0
        } else {
            self.generation.as_secs() / self.total().as_secs()
        }
    }

    /// Merge another report into this one (used when a logical bulk is
    /// executed as several waves or chunks).
    pub fn merge(&mut self, other: &BulkReport) {
        self.transactions += other.transactions;
        self.generation += other.generation;
        self.execution += other.execution;
        self.transfer += other.transfer;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.outcomes.extend(other.outcomes.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::Value;

    #[test]
    fn bulk_sorts_by_timestamp() {
        let bulk = Bulk::new(vec![
            TxnSignature::new(5, 0, vec![]),
            TxnSignature::new(2, 0, vec![Value::Int(1)]),
            TxnSignature::new(9, 1, vec![]),
        ]);
        let ids: Vec<_> = bulk.txns.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(bulk.len(), 3);
        assert!(!bulk.is_empty());
        assert!(bulk.wire_bytes() > 0);
    }

    #[test]
    fn report_totals_and_throughput() {
        let mut r = BulkReport {
            strategy: StrategyKind::Kset,
            transactions: 1000,
            generation: SimDuration::from_millis(2.0),
            execution: SimDuration::from_millis(7.0),
            transfer: SimDuration::from_millis(1.0),
            committed: 990,
            aborted: 10,
            outcomes: vec![],
        };
        assert!((r.total().as_millis() - 10.0).abs() < 1e-9);
        assert!((r.throughput().ktps() - 100.0).abs() < 1e-6);
        assert!((r.generation_fraction() - 0.2).abs() < 1e-9);

        let other = r.clone();
        r.merge(&other);
        assert_eq!(r.transactions, 2000);
        assert_eq!(r.committed, 1980);
        assert!((r.total().as_millis() - 20.0).abs() < 1e-9);
    }
}
