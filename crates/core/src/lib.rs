//! # gputx-core — the GPUTx bulk transaction execution engine
//!
//! This crate implements the paper's primary contribution: an OLTP engine that
//! executes *bulks* of transactions on the (simulated) GPU.
//!
//! * [`config`] — engine configuration: device, bulk size, grouping passes,
//!   partition size, strategy-selection thresholds, logging policy.
//! * [`bulk`] — bulks and per-bulk execution reports (generation / execution /
//!   transfer time split, committed/aborted counts, throughput).
//! * [`profiler`] — the bulk profiler: computes the structural indicators of
//!   the T-dependency graph used for strategy selection (depth `d`, 0-set
//!   width `w0`, cross-partition count `c`; Appendix D).
//! * [`grouping`] — transaction-type grouping via multi-pass radix
//!   partitioning to minimize branch divergence (Appendix D, Figure 3/12).
//! * [`strategy`] — the three bulk execution strategies: TPL (two-phase
//!   locking with counter-based spin locks), PART (partition-based, one thread
//!   per partition) and K-SET (iterative 0-set execution) — §5.1–5.3.
//! * [`select`] — the rule-based strategy selection of Appendix D Algorithm 1.
//! * [`logging`] — undo-logging policy and recovery accounting (Appendix D).
//! * [`relaxed`] — the serializability-only variants without the timestamp
//!   constraint (Appendix G).
//! * [`pipeline`] — streaming execution: the [`pipeline::PipelinedGpuTx`]
//!   engine (continuous ingest, bulk formation overlapped with execution on
//!   stage threads) and the arrival/response-time simulation behind the
//!   response-time-vs-throughput figures (Figures 9 and 15).
//! * [`builder`] — the [`EngineBuilder`]: one fluent construction surface
//!   for the one-shot, pipelined and CPU engines, including the replication
//!   role (primary log shipping via `gputx-replication`) and the HTAP read
//!   path (bulk-boundary analytics snapshots via `gputx-analytics`).
//! * [`error`] — typed engine errors ([`EngineError`]).
//! * [`engine`] — the [`engine::GpuTxEngine`] facade: register procedures,
//!   load the database to the device, submit transactions, execute bulks and
//!   collect results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adaptive;
pub mod builder;
pub mod bulk;
pub mod config;
pub mod engine;
pub mod error;
pub mod grouping;
pub mod logging;
pub mod pipeline;
pub mod profiler;
pub mod relaxed;
pub mod select;
pub mod strategy;

pub use adaptive::{AdaptiveConfig, AdaptiveSelector, Decision, DecisionStats, StrategyScores};
pub use builder::EngineBuilder;
pub use bulk::{Bulk, BulkReport};
pub use config::{EngineConfig, PipelineConfig, StrategyChoice};
pub use engine::GpuTxEngine;
pub use error::EngineError;
pub use pipeline::PipelinedGpuTx;
pub use profiler::{profile_pipeline, BulkProfile, StageOccupancy};
pub use select::choose_strategy;
pub use strategy::{execute_bulk, try_execute_bulk, ExecContext, StrategyKind, StrategyOutcome};
