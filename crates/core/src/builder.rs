//! One construction surface for every engine flavor.
//!
//! Engine construction had accreted variants — `EngineConfig`'s
//! `with_executor` / `with_durability[_config]`, `GpuTxEngine::new` +
//! `into_pipelined`, `PipelinedGpuTx::new`'s four positional arguments,
//! `CpuEngine`'s own builder methods — and replication roles would have added
//! another axis to each. [`EngineBuilder`] replaces the sprawl: database and
//! registry in, one fluent chain for executor/durability/pipeline/replication,
//! then [`build`](EngineBuilder::build) (one-shot),
//! [`build_pipelined`](EngineBuilder::build_pipelined) (streaming) or
//! [`build_cpu`](EngineBuilder::build_cpu) (the CPU reference engine).
//!
//! ```
//! use gputx_core::{EngineBuilder, StrategyChoice};
//! use gputx_storage::Database;
//! use gputx_txn::ProcedureRegistry;
//!
//! let engine = EngineBuilder::new(Database::column_store(), ProcedureRegistry::new())
//!     .with_strategy(StrategyChoice::ForceKset)
//!     .build();
//! assert_eq!(engine.pending(), 0);
//! ```

use crate::config::{EngineConfig, PipelineConfig, StrategyChoice};
use crate::engine::GpuTxEngine;
use crate::pipeline::PipelinedGpuTx;
use gputx_analytics::{AnalyticsConfig, AnalyticsSession};
use gputx_cpu::CpuEngine;
use gputx_durability::DurabilityConfig;
use gputx_exec::ExecutorChoice;
use gputx_replication::{PrimaryHub, Promotion, ReplicationOptions};
use gputx_sim::CpuSpec;
use gputx_storage::Database;
use gputx_txn::ProcedureRegistry;
use std::path::PathBuf;

/// Fluent construction of every engine flavor from one starting point: the
/// database and the registered transaction types.
///
/// The replication role belongs here because it must bind to the *initial*
/// database state: [`replicate`](EngineBuilder::replicate) seeds the
/// [`PrimaryHub`]'s mirror from the builder's database, so the mirror and the
/// engine can never start from different states. Grab the hub (to `listen`
/// for followers) with [`hub`](EngineBuilder::hub) before building.
#[derive(Debug)]
pub struct EngineBuilder {
    db: Database,
    registry: ProcedureRegistry,
    config: EngineConfig,
    pipeline: PipelineConfig,
    replication: Option<PrimaryHub>,
    analytics: Option<AnalyticsSession>,
    /// Epoch the hub must start under when this builder continues a promoted
    /// replica (`None` = mint a fresh epoch).
    epoch_seed: Option<u64>,
    /// Installed fault-injection plane (`None` = no faults, zero cost).
    faults: Option<gputx_faults::FaultInjector>,
    /// Supervised-heal policy for a poisoned WAL writer.
    heal_policy: gputx_faults::HealPolicy,
    /// Health surface shared between the built engine and any server.
    health: gputx_faults::Health,
}

impl EngineBuilder {
    /// Start building an engine over `db` with `registry`'s transaction
    /// types.
    pub fn new(db: Database, registry: ProcedureRegistry) -> Self {
        EngineBuilder {
            db,
            registry,
            config: EngineConfig::default(),
            pipeline: PipelineConfig::default(),
            replication: None,
            analytics: None,
            epoch_seed: None,
            faults: None,
            heal_policy: gputx_faults::HealPolicy::default(),
            health: gputx_faults::Health::new(),
        }
    }

    /// Continue a promoted replica as the new primary: the database is the
    /// promotion's applied prefix, and a subsequent
    /// [`replicate`](EngineBuilder::replicate) starts the hub under the
    /// promotion's (bumped) epoch — which is what fences the old primary out
    /// of the group.
    pub fn from_promotion(promotion: Promotion, registry: ProcedureRegistry) -> Self {
        let mut b = Self::new(promotion.db, registry);
        b.epoch_seed = Some(promotion.epoch);
        b
    }

    // -- engine configuration -------------------------------------------------

    /// Replace the whole engine configuration (strategy, thresholds, device,
    /// …). Fields the builder also exposes directly (executor, durability)
    /// are taken from `config` as given and can still be overridden by later
    /// builder calls.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Force a bulk execution strategy (default: rule-based `Auto`).
    pub fn with_strategy(mut self, strategy: StrategyChoice) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Select execution strategies adaptively
    /// ([`StrategyChoice::Adaptive`]): every formed bulk is profiled and
    /// K-SET/PART/TPL are scored through the SIMT and CPU cost models; the
    /// cheapest wins, with hysteresis against thrashing (see
    /// [`crate::adaptive`]). In the pipelined engine the selector also feeds
    /// bulk-size suggestions back into the admission stage. Decisions are
    /// observable through `decision_stats()` on either engine flavor.
    ///
    /// # Examples
    ///
    /// A pipelined TPC-C run reporting the strategy decision histogram:
    ///
    /// ```
    /// use gputx_core::EngineBuilder;
    /// use gputx_workloads::TpccConfig;
    ///
    /// let mut bundle = TpccConfig {
    ///     warehouses: 2,
    ///     ..TpccConfig::default()
    /// }
    /// .build();
    /// let engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
    ///     .adaptive()
    ///     .with_max_bulk_size(256)
    ///     .with_max_wait_us(10_000_000)
    ///     .build_pipelined();
    /// for (ty, params) in bundle.generate(512) {
    ///     engine.submit(ty, params).unwrap();
    /// }
    /// engine.flush().unwrap();
    /// let stats = engine.decision_stats().expect("adaptive engines record decisions");
    /// assert!(stats.total() >= 2, "512 transactions at a 256 close threshold");
    /// for (strategy, bulks) in stats.histogram() {
    ///     println!("{strategy:?}: {bulks} bulks");
    /// }
    /// ```
    pub fn adaptive(self) -> Self {
        self.with_strategy(StrategyChoice::Adaptive)
    }

    /// Maximum transactions per one-shot bulk.
    pub fn with_bulk_size(mut self, bulk_size: usize) -> Self {
        self.config.bulk_size = bulk_size;
        self
    }

    /// Host executor for functional work — applies to both the one-shot
    /// engine and the pipeline's execution stage (and the CPU engine's
    /// partition groups).
    pub fn with_executor(mut self, executor: ExecutorChoice) -> Self {
        self.config.executor = executor;
        self.pipeline.executor = executor;
        self
    }

    /// Enable bulk-granular redo logging into `dir` with the default
    /// per-bulk fsync policy.
    pub fn with_durability(self, dir: impl Into<PathBuf>) -> Self {
        self.with_durability_config(DurabilityConfig::at(dir))
    }

    /// Full durability configuration (directory + fsync policy).
    pub fn with_durability_config(mut self, durability: DurabilityConfig) -> Self {
        self.config.durability = durability;
        self
    }

    // -- pipeline configuration ----------------------------------------------

    /// Replace the whole pipeline configuration (admission knobs + stage
    /// executor) for [`build_pipelined`](EngineBuilder::build_pipelined).
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Pipeline admission: close a bulk at this many transactions.
    pub fn with_max_bulk_size(mut self, max_bulk_size: usize) -> Self {
        self.pipeline = self.pipeline.with_max_bulk_size(max_bulk_size);
        self
    }

    /// Pipeline admission: close a non-empty bulk after its oldest
    /// transaction waited this many microseconds.
    pub fn with_max_wait_us(mut self, max_wait_us: u64) -> Self {
        self.pipeline = self.pipeline.with_max_wait_us(max_wait_us);
        self
    }

    /// Pipeline admission queue capacity.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.pipeline = self.pipeline.with_queue_depth(queue_depth);
        self
    }

    // -- robustness -----------------------------------------------------------

    /// Install a deterministic fault-injection plan (see
    /// [`FaultPlan`](gputx_faults::FaultPlan)): the built engine's WAL
    /// writer consults the plan's seeded decision stream on every
    /// append/fsync, and [`faults_injector`](EngineBuilder::faults_injector)
    /// exposes the injector for wrapping wire and replication streams
    /// (`gputx_server::chaos_wrap`). Engines built without this pay a single
    /// `Option` branch at the injection sites.
    pub fn faults(mut self, plan: gputx_faults::FaultPlan) -> Self {
        self.faults = Some(gputx_faults::FaultInjector::new(plan));
        self
    }

    /// The injector installed by [`faults`](EngineBuilder::faults)
    /// (`None` without it). Cloneable; take one before building to derive
    /// wire/follower fault streams or to drive the quiesce switch.
    pub fn faults_injector(&self) -> Option<gputx_faults::FaultInjector> {
        self.faults.clone()
    }

    /// Tune the supervised WAL heal path: how many automatic
    /// checkpoint-into-fresh-epoch heals are attempted after a poisoned log
    /// writer before the engine degrades, and whether a degraded engine
    /// keeps accepting (unlogged) writes.
    pub fn heal_policy(mut self, policy: gputx_faults::HealPolicy) -> Self {
        self.heal_policy = policy;
        self
    }

    /// The health surface the built engine updates at its group-commit
    /// point. Clone it before building and hand it to
    /// `Server::serve_health` to answer wire `Health` requests.
    pub fn health(&self) -> gputx_faults::Health {
        self.health.clone()
    }

    // -- replication role ----------------------------------------------------

    /// Make the built engine a replication primary with default
    /// [`ReplicationOptions`]. See
    /// [`replicate_with`](EngineBuilder::replicate_with).
    pub fn replicate(self) -> Self {
        self.replicate_with(ReplicationOptions::default())
    }

    /// Make the built engine a replication primary: every committed bulk's
    /// redo record is published to a [`PrimaryHub`] seeded **now**, from this
    /// builder's database. Call [`hub`](EngineBuilder::hub) to get the handle
    /// for `listen`/`attach`/`retire`; under a builder made by
    /// [`from_promotion`](EngineBuilder::from_promotion) the hub starts under
    /// the promotion's epoch.
    pub fn replicate_with(mut self, opts: ReplicationOptions) -> Self {
        let hub = match self.epoch_seed {
            Some(epoch) => PrimaryHub::with_epoch(&self.db, epoch, opts),
            None => PrimaryHub::with_epoch(&self.db, gputx_durability::fresh_epoch(), opts),
        };
        self.replication = Some(hub);
        self
    }

    /// The replication hub created by [`replicate`](EngineBuilder::replicate)
    /// (`None` without it). The hub is cloneable; take one before `build` to
    /// accept followers while the engine runs.
    pub fn hub(&self) -> Option<PrimaryHub> {
        self.replication.clone()
    }

    // -- HTAP read path -------------------------------------------------------

    /// Attach an analytics session with default configuration. See
    /// [`analytics_with`](EngineBuilder::analytics_with).
    pub fn analytics(self) -> Self {
        self.analytics_with(AnalyticsConfig::default())
    }

    /// Attach an [`AnalyticsSession`] to the built engine: every committed
    /// bulk's redo record — the same one the WAL appends and the replication
    /// hub ships — is published into the session's snapshot store, so
    /// scanner threads can cut consistent bulk-boundary snapshots
    /// ([`AnalyticsSession::snapshot`]) while the engine keeps committing.
    ///
    /// Like [`replicate`](EngineBuilder::replicate), the session binds to
    /// the *initial* database state: its mirror is seeded **now**, from this
    /// builder's database, so engine and mirror can never start from
    /// different states. Grab the scanner-side handle with
    /// [`analytics_session`](EngineBuilder::analytics_session) before
    /// building.
    pub fn analytics_with(mut self, config: AnalyticsConfig) -> Self {
        self.analytics = Some(AnalyticsSession::with_config(&self.db, config));
        self
    }

    /// The analytics session created by
    /// [`analytics`](EngineBuilder::analytics) (`None` without it). The
    /// session is cloneable; take one before `build` to cut snapshots and
    /// run scans while the engine runs — and after it shuts down.
    pub fn analytics_session(&self) -> Option<AnalyticsSession> {
        self.analytics.clone()
    }

    // -- terminals ------------------------------------------------------------

    /// Build the one-shot bulk engine ([`GpuTxEngine`]).
    pub fn build(self) -> GpuTxEngine {
        GpuTxEngine::with_parts(
            self.db,
            self.registry,
            self.config,
            self.replication,
            self.analytics,
            crate::pipeline::RobustnessParts {
                faults: self.faults,
                heal_policy: self.heal_policy,
                health: self.health,
            },
        )
    }

    /// Build the streaming engine ([`PipelinedGpuTx`]): continuous ingest,
    /// grouping overlapped with execution.
    pub fn build_pipelined(self) -> PipelinedGpuTx {
        PipelinedGpuTx::with_parts(
            self.db,
            self.registry,
            self.config,
            self.pipeline,
            self.replication,
            self.analytics,
            crate::pipeline::RobustnessParts {
                faults: self.faults,
                heal_policy: self.heal_policy,
                health: self.health,
            },
        )
    }

    /// Build the CPU reference engine for `spec`, carrying over the
    /// builder's executor choice. The CPU engine executes bulks against a
    /// caller-held database and keeps its own partition-size default, so the
    /// builder's database/registry/durability/replication settings do not
    /// apply to it — tune those with [`CpuEngine::with_partition_size`].
    pub fn build_cpu(&self, spec: CpuSpec) -> CpuEngine {
        // The deprecated per-engine setter survives exactly for this
        // forwarding use; external code goes through the builder.
        #[allow(deprecated)]
        CpuEngine::new(spec).with_executor(self.config.executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Value};
    use gputx_txn::{BasicOp, ProcedureDef};

    fn setup(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t).insert(vec![Value::Int(i), Value::Int(0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "touch",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_int();
                ctx.write(t, row, 1, Value::Int(v + 1));
            },
        ));
        (db, reg)
    }

    #[test]
    fn builder_configures_one_shot_engine() {
        let (db, reg) = setup(16);
        let mut engine = EngineBuilder::new(db, reg)
            .with_strategy(StrategyChoice::ForceKset)
            .with_bulk_size(8)
            .with_executor(ExecutorChoice::parallel(2))
            .build();
        assert_eq!(engine.config().strategy, StrategyChoice::ForceKset);
        assert_eq!(engine.config().bulk_size, 8);
        assert!(engine.config().executor.is_parallel());
        for i in 0..16 {
            engine.submit(0, vec![Value::Int(i % 16)]);
        }
        let reports = engine.run_until_empty();
        assert_eq!(reports.len(), 2);
        assert_eq!(engine.total_committed(), 16);
    }

    #[test]
    fn adaptive_builder_records_decisions_on_both_flavors() {
        let (db, reg) = setup(64);
        let mut engine = EngineBuilder::new(db.clone(), reg.clone())
            .adaptive()
            .with_bulk_size(32)
            .build();
        for i in 0..64 {
            engine.submit(0, vec![Value::Int(i % 64)]);
        }
        engine.run_until_empty();
        assert_eq!(engine.total_committed(), 64);
        let stats = engine.decision_stats().expect("adaptive one-shot engine");
        assert_eq!(stats.total(), 2, "64 transactions in bulks of 32");
        // Conflict-free touches: the selector must never have picked TPL.
        assert_eq!(stats.tpl, 0);

        let engine = EngineBuilder::new(db, reg)
            .adaptive()
            .with_max_bulk_size(32)
            .with_max_wait_us(10_000_000)
            .build_pipelined();
        for i in 0..64 {
            engine.submit(0, vec![Value::Int(i % 64)]).unwrap();
        }
        engine.flush().unwrap();
        let stats = engine
            .decision_stats()
            .expect("adaptive pipelined engine, observable while running");
        assert!(stats.total() >= 2);
        assert_eq!(stats.tpl, 0);
        let (_, pipe_stats) = engine.finish().unwrap();
        assert_eq!(pipe_stats.committed, 64);
    }

    #[test]
    fn non_adaptive_engines_report_no_decision_stats() {
        let (db, reg) = setup(4);
        let engine = EngineBuilder::new(db.clone(), reg.clone()).build();
        assert!(engine.decision_stats().is_none());
        let engine = EngineBuilder::new(db, reg).build_pipelined();
        assert!(engine.decision_stats().is_none());
    }

    #[test]
    fn builder_executor_applies_to_pipeline_stage_too() {
        let (db, reg) = setup(8);
        let engine = EngineBuilder::new(db, reg)
            .with_executor(ExecutorChoice::parallel(2))
            .with_max_bulk_size(4)
            .with_max_wait_us(10_000_000)
            .build_pipelined();
        for i in 0..8 {
            engine.submit(0, vec![Value::Int(i % 8)]).unwrap();
        }
        let (db, stats) = engine.finish().unwrap();
        assert_eq!(stats.committed, 8);
        assert_eq!(db.table_by_name("items").get(3, 1), Value::Int(1));
    }

    #[test]
    fn builder_cpu_engine_carries_executor() {
        let (mut db, reg) = setup(32);
        let sigs: Vec<_> = (0..32)
            .map(|i| gputx_txn::TxnSignature::new(i, 0, vec![Value::Int(i as i64 % 32)]))
            .collect();
        let cpu = EngineBuilder::new(db.clone(), reg.clone())
            .with_executor(ExecutorChoice::parallel(2))
            .build_cpu(CpuSpec::xeon_e5520());
        let report = cpu.execute_bulk(&mut db, &reg, &sigs);
        assert_eq!(report.committed, 32);
    }

    #[test]
    fn replicate_seeds_hub_from_builder_db() {
        let (db, reg) = setup(4);
        let builder = EngineBuilder::new(db.clone(), reg).replicate();
        let hub = builder.hub().expect("replicate() creates the hub");
        assert!(hub.mirror_db() == db);
        assert_eq!(hub.next_lsn(), 0);
        let mut engine = builder.build();
        engine.submit(0, vec![Value::Int(1)]);
        engine.run_until_empty();
        // The commit was published: mirror tracks the engine exactly.
        assert_eq!(hub.next_lsn(), 1);
        assert!(hub.mirror_db() == *engine.db());
        hub.stop();
    }

    #[test]
    fn analytics_session_tracks_commits_and_survives_shutdown() {
        let (db, reg) = setup(8);
        let builder = EngineBuilder::new(db, reg).analytics();
        let session = builder
            .analytics_session()
            .expect("analytics() creates the session");
        assert_eq!(session.records_applied(), 0);
        let mut engine = builder.build();
        for i in 0..8 {
            engine.submit(0, vec![Value::Int(i)]);
        }
        engine.run_until_empty();
        assert_eq!(session.records_applied(), 1);
        let snap = session.snapshot();
        snap.check_against(engine.db()).unwrap();
        assert_eq!(snap.get_i64(0, 5, 1), 1);
        // The snapshot outlives the engine.
        drop(engine);
        assert_eq!(snap.get_i64(0, 5, 1), 1);
    }

    #[test]
    fn analytics_rides_the_pipelined_commit_point() {
        let (db, reg) = setup(16);
        let builder = EngineBuilder::new(db, reg)
            .with_max_bulk_size(4)
            .with_max_wait_us(10_000_000)
            .analytics();
        let session = builder.analytics_session().unwrap();
        let engine = builder.build_pipelined();
        for i in 0..16 {
            engine.submit(0, vec![Value::Int(i % 16)]).unwrap();
        }
        let (db, stats) = engine.finish().unwrap();
        assert_eq!(stats.committed, 16);
        assert!(session.wait_applied(stats.bulks(), std::time::Duration::from_secs(5)));
        let snap = session.snapshot();
        assert_eq!(snap.records_applied(), stats.bulks());
        snap.check_against(&db).unwrap();
    }

    #[test]
    fn from_promotion_reuses_promotion_epoch() {
        let (db, reg) = setup(4);
        let promotion = Promotion {
            db,
            epoch: 12345,
            applied_lsn: 7,
        };
        let builder = EngineBuilder::from_promotion(promotion, reg).replicate();
        assert_eq!(builder.hub().unwrap().epoch(), 12345);
    }
}
