//! The GPUTx engine facade.
//!
//! [`GpuTxEngine`] ties the pieces together the way §3.2 and §5 describe the
//! system: transaction types are registered up front, the database is loaded
//! into device memory, users submit transaction signatures into the pool, and
//! the engine periodically generates a bulk, profiles it, picks an execution
//! strategy and executes it on the (simulated) GPU. Results are collected in a
//! result pool on the host.

use crate::adaptive::{AdaptiveConfig, AdaptiveSelector, DecisionStats};
use crate::bulk::{Bulk, BulkReport};
use crate::config::{EngineConfig, PipelineConfig, StrategyChoice};
use crate::pipeline::PipelinedGpuTx;
use crate::profiler::{profile_bulk, BulkProfile};
use crate::select::choose_strategy;
use crate::strategy::{execute_bulk, ExecContext, StrategyKind};
use gputx_durability::{Durability, DurabilityStats};
use gputx_sim::{Gpu, SimDuration, Throughput};
use gputx_storage::{Database, Value};
use gputx_txn::{ProcedureRegistry, TransactionPool, TxnId, TxnOutcome, TxnTypeId};

/// A completed transaction in the result pool.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnResult {
    /// The transaction id.
    pub id: TxnId,
    /// Commit or abort.
    pub outcome: TxnOutcome,
}

/// The GPUTx engine.
#[derive(Debug)]
pub struct GpuTxEngine {
    gpu: Gpu,
    db: Database,
    registry: ProcedureRegistry,
    pool: TransactionPool,
    config: EngineConfig,
    reports: Vec<BulkReport>,
    results: Vec<TxnResult>,
    load_time: SimDuration,
    /// Redo logging, when `config.durability` names a directory: each
    /// committed bulk appends one record; `checkpoint` snapshots and
    /// truncates.
    durability: Option<Durability>,
    /// Log shipping, when this engine is a replication primary (see
    /// `EngineBuilder::replicate`): each committed bulk's redo record is
    /// published to the hub after the local WAL append.
    replication: Option<gputx_replication::PrimaryHub>,
    /// HTAP read path, when this engine feeds an analytics session (see
    /// `EngineBuilder::analytics`): each committed bulk's redo record is
    /// published into the session's snapshot store, last in the consumer
    /// chain (after WAL append and replication).
    analytics: Option<gputx_analytics::AnalyticsSession>,
    /// Supervised-heal policy for a poisoned WAL writer.
    heal_policy: gputx_faults::HealPolicy,
    /// Automatic heals still allowed before degrading.
    heals_left: u32,
    /// Shared health surface updated at the group-commit point.
    health: gputx_faults::Health,
    /// Cost-model strategy selector, present under
    /// `StrategyChoice::Adaptive`. The one-shot engine applies its strategy
    /// decisions but keeps `config.bulk_size` bulk boundaries — sizing
    /// feedback is a streaming-engine feature (see
    /// [`PipelinedGpuTx::decision_stats`]).
    selector: Option<AdaptiveSelector>,
}

impl GpuTxEngine {
    /// Create an engine: allocates the database in device memory and accounts
    /// for the initial host→device load (the "initialization" transfer of
    /// Figure 16).
    ///
    /// With durability configured, the engine writes the initial checkpoint
    /// of `db` and opens a fresh write-ahead log before accepting work, so
    /// recovery is self-contained from the first bulk onward. Panics if the
    /// durability directory cannot be initialized — an engine that silently
    /// dropped its durability guarantee would be worse than one that refuses
    /// to start.
    pub fn new(db: Database, registry: ProcedureRegistry, config: EngineConfig) -> Self {
        Self::with_parts(
            db,
            registry,
            config,
            None,
            None,
            crate::pipeline::RobustnessParts::default(),
        )
    }

    /// [`GpuTxEngine::new`] plus an optional replication hub and analytics
    /// session whose mirrors were seeded from `db`, and the robustness
    /// surface (fault plane, heal policy, health) — the
    /// `EngineBuilder::build` entry point.
    pub(crate) fn with_parts(
        db: Database,
        registry: ProcedureRegistry,
        config: EngineConfig,
        replication: Option<gputx_replication::PrimaryHub>,
        analytics: Option<gputx_analytics::AnalyticsSession>,
        robustness: crate::pipeline::RobustnessParts,
    ) -> Self {
        let mut gpu = Gpu::new(config.device.clone());
        let load_time = db.load_to_device(&mut gpu);
        let mut durability = Durability::from_config(&config.durability, &db)
            .unwrap_or_else(|e| panic!("cannot initialize durability: {e}"));
        let crate::pipeline::RobustnessParts {
            faults,
            heal_policy,
            health,
        } = robustness;
        if let Some(injector) = faults.as_ref() {
            if let Some(d) = durability.as_mut() {
                d.set_faults(injector);
            }
            health.attach_injector(injector.clone());
        }
        health.set_wal(if durability.is_some() {
            gputx_faults::WalState::Healthy
        } else {
            gputx_faults::WalState::Disabled
        });
        // Keep WAL and stream numbering in lockstep: a fresh WAL starts at
        // LSN 0, so a hub that already shipped records restarts its stream
        // (new epoch, followers resync).
        if durability.is_some() {
            if let Some(hub) = replication.as_ref().filter(|h| h.next_lsn() != 0) {
                hub.rotate_epoch();
            }
        }
        let selector = matches!(config.strategy, StrategyChoice::Adaptive).then(|| {
            AdaptiveSelector::new(
                &config,
                AdaptiveConfig {
                    bulk_ceiling: config.bulk_size,
                    ..AdaptiveConfig::default()
                },
            )
        });
        GpuTxEngine {
            gpu,
            db,
            registry,
            pool: TransactionPool::new(),
            config,
            reports: Vec::new(),
            results: Vec::new(),
            load_time,
            durability,
            replication,
            analytics,
            heals_left: heal_policy.heal_budget,
            heal_policy,
            health,
            selector,
        }
    }

    /// The engine's shared health surface (WAL state including automatic
    /// heals and degradation, replication progress, fault-plane activity).
    pub fn health(&self) -> gputx_faults::Health {
        self.health.clone()
    }

    /// Submit a transaction (`Execute procedure_name(parameters)`); returns
    /// the assigned id/timestamp.
    pub fn submit(&mut self, ty: TxnTypeId, params: Vec<Value>) -> TxnId {
        self.pool.submit(ty, params)
    }

    /// Number of transactions waiting in the pool.
    pub fn pending(&self) -> usize {
        self.pool.len()
    }

    /// Profile the next bulk (up to `bulk_size` pending transactions) without
    /// executing it.
    pub fn profile_next_bulk(&self) -> Option<BulkProfile> {
        if self.pool.is_empty() {
            return None;
        }
        let sigs: Vec<_> = self
            .pool
            .peek()
            .take(self.config.bulk_size)
            .cloned()
            .collect();
        Some(profile_bulk(&self.registry, &self.db, &sigs))
    }

    /// Generate and execute one bulk using the configured strategy choice.
    /// Returns `None` when the pool is empty.
    pub fn execute_pending(&mut self) -> Option<BulkReport> {
        let profile = self.profile_next_bulk()?;
        let strategy = match self.selector.as_mut() {
            // Adaptive: cost-model scoring with hysteresis and decision
            // stats; bulk boundaries stay at `config.bulk_size`.
            Some(selector) => selector.decide(&profile).strategy,
            None => choose_strategy(&self.config, &profile),
        };
        self.execute_pending_with(strategy)
    }

    /// Snapshot of the adaptive selector's decision stats; `None` unless the
    /// engine runs with `StrategyChoice::Adaptive`.
    pub fn decision_stats(&self) -> Option<DecisionStats> {
        self.selector.as_ref().map(|s| s.stats_handle().snapshot())
    }

    /// Generate and execute one bulk with an explicit strategy. With
    /// durability enabled, the bulk's redo record is appended (and fsynced
    /// per policy) before this returns — the group-commit point of the
    /// one-shot engine.
    pub fn execute_pending_with(&mut self, strategy: StrategyKind) -> Option<BulkReport> {
        if self.pool.is_empty() {
            return None;
        }
        let sigs = self.pool.drain(self.config.bulk_size);
        let bulk = Bulk::new(sigs);
        // Arm dirty-field tracking so the bulk's physical writes can be read
        // back into its redo record after commit.
        let capture =
            (self.durability.is_some() || self.replication.is_some() || self.analytics.is_some())
                .then(|| gputx_durability::WriteCapture::begin(&mut self.db));
        let mut ctx = ExecContext {
            gpu: &mut self.gpu,
            db: &mut self.db,
            registry: &self.registry,
            config: &self.config,
        };
        let outcome = execute_bulk(&mut ctx, strategy, &bulk);
        if let Some(capture) = capture {
            // One redo record serves the local WAL and the replication hub;
            // the local append comes first so followers never hold a record
            // the primary did not log.
            let lsn = match (&self.durability, &self.replication, &self.analytics) {
                (Some(d), _, _) => d.next_lsn(),
                (None, Some(hub), _) => hub.next_lsn(),
                (None, None, Some(session)) => session.next_lsn(),
                (None, None, None) => unreachable!("capture exists only with a consumer"),
            };
            let record = gputx_durability::BulkLogRecord {
                lsn,
                write_set: capture.finish(&mut self.db),
            };
            if let Some(durability) = self.durability.as_mut() {
                if durability.append_record(&record).is_err() {
                    // Supervised heal, mirroring the pipelined runner: the
                    // bulk's effects are already in `db`, so a fresh
                    // checkpoint absorbs the record that never landed.
                    let mut healed = false;
                    while self.heals_left > 0 {
                        self.heals_left -= 1;
                        if durability.heal(&self.db, 1).is_ok() {
                            self.health.record_heal();
                            healed = true;
                            break;
                        }
                    }
                    if !healed {
                        self.health.set_wal(gputx_faults::WalState::Degraded);
                        assert!(
                            self.heal_policy.writes_when_degraded,
                            "durability log append failed and the heal budget \
                             is exhausted (writes_when_degraded = false)"
                        );
                        // Log superseded; serve on, unlogged.
                        self.durability = None;
                    }
                }
            }
            if let Some(hub) = self.replication.as_ref() {
                hub.publish(&record);
            }
            if let Some(session) = self.analytics.as_ref() {
                session.publish(&record);
            }
        }
        for (id, o) in &outcome.outcomes {
            self.results.push(TxnResult {
                id: *id,
                outcome: o.clone(),
            });
        }
        let report = outcome.into_report();
        self.reports.push(report.clone());
        Some(report)
    }

    /// Execute bulks until the pool is empty; returns one report per bulk.
    pub fn run_until_empty(&mut self) -> Vec<BulkReport> {
        let mut out = Vec::new();
        while let Some(report) = self.execute_pending() {
            out.push(report);
        }
        out
    }

    /// Aggregate throughput over every bulk executed so far.
    pub fn overall_throughput(&self) -> Throughput {
        let txns: u64 = self.reports.iter().map(|r| r.transactions as u64).sum();
        let time: SimDuration = self.reports.iter().map(|r| r.total()).sum();
        Throughput::from_count(txns, time)
    }

    /// Simulated time of the initial database load.
    pub fn load_time(&self) -> SimDuration {
        self.load_time
    }

    /// The database (host view of the device-resident data).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database (e.g. for loading more data).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The simulated GPU (stats, transfer log, memory usage).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// The registered transaction types.
    pub fn registry(&self) -> &ProcedureRegistry {
        &self.registry
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Reports of every bulk executed so far.
    pub fn reports(&self) -> &[BulkReport] {
        &self.reports
    }

    /// The result pool: one entry per executed transaction.
    pub fn results(&self) -> &[TxnResult] {
        &self.results
    }

    /// Total committed transactions so far.
    pub fn total_committed(&self) -> usize {
        self.reports.iter().map(|r| r.committed).sum()
    }

    /// Total aborted transactions so far.
    pub fn total_aborted(&self) -> usize {
        self.reports.iter().map(|r| r.aborted).sum()
    }

    /// Take a durability checkpoint: snapshot the current database state and
    /// truncate the write-ahead log. No-op returning `false` when durability
    /// is disabled; panics on I/O failure (like the logging path, a silently
    /// dropped snapshot would forfeit the durability guarantee).
    pub fn checkpoint(&mut self) -> bool {
        match self.durability.as_mut() {
            Some(durability) => {
                durability
                    .checkpoint(&self.db)
                    .unwrap_or_else(|e| panic!("durability checkpoint failed: {e}"));
                true
            }
            None => false,
        }
    }

    /// Durability cost accounting (records, bytes, fsyncs, logging seconds);
    /// `None` when durability is disabled.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durability.as_ref().map(|d| d.stats())
    }

    /// Convert this one-shot engine into the streaming
    /// [`PipelinedGpuTx`]: the database, registry and configuration carry
    /// over, and any transactions still pending in the pool are re-submitted
    /// into the pipeline (their pool timestamps are re-assigned by admission
    /// order, which preserves their relative order).
    #[deprecated(
        since = "0.1.0",
        note = "construct the streaming engine directly with `EngineBuilder::build_pipelined`"
    )]
    pub fn into_pipelined(mut self, pipeline: PipelineConfig) -> PipelinedGpuTx {
        let pending = self.pool.drain_all();
        // Release this engine's log writer before the pipeline re-initializes
        // the same durability directory (fresh checkpoint + truncated log).
        drop(self.durability.take());
        let replication = self.replication.take();
        let analytics = self.analytics.take();
        let streaming = PipelinedGpuTx::with_parts(
            self.db,
            self.registry,
            self.config,
            pipeline,
            replication,
            analytics,
            crate::pipeline::RobustnessParts {
                faults: None,
                heal_policy: self.heal_policy,
                health: self.health,
            },
        );
        for sig in pending {
            // The engine just started, so submissions cannot fail; tickets
            // for carried-over transactions are intentionally dropped (the
            // one-shot API had no per-transaction completion handle either).
            let _ = streaming.submit(sig.ty, sig.params);
        }
        streaming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyChoice;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType};
    use gputx_txn::{BasicOp, ProcedureDef};

    fn setup(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("balance", DataType::Double),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Double(100.0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "deposit",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let bal = ctx.read(t, row, 1).as_double();
                ctx.write(t, row, 1, Value::Double(bal + ctx.param_double(1)));
            },
        ));
        (db, reg)
    }

    #[test]
    fn end_to_end_submit_execute_collect() {
        let (db, reg) = setup(1000);
        let mut engine = GpuTxEngine::new(db, reg, EngineConfig::default());
        assert!(engine.load_time().as_secs() > 0.0);
        for i in 0..5000u64 {
            engine.submit(0, vec![Value::Int((i % 1000) as i64), Value::Double(1.0)]);
        }
        assert_eq!(engine.pending(), 5000);
        let reports = engine.run_until_empty();
        assert!(!reports.is_empty());
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.total_committed(), 5000);
        assert_eq!(engine.total_aborted(), 0);
        assert_eq!(engine.results().len(), 5000);
        assert!(engine.overall_throughput().tps() > 0.0);
        // Every account received 5 deposits of 1.0.
        assert_eq!(
            engine.db().table_by_name("accounts").get(42, 1),
            Value::Double(105.0)
        );
    }

    #[test]
    fn bulk_size_limits_each_bulk() {
        let (db, reg) = setup(100);
        let config = EngineConfig::default().with_bulk_size(128);
        let mut engine = GpuTxEngine::new(db, reg, config);
        for i in 0..300u64 {
            engine.submit(0, vec![Value::Int((i % 100) as i64), Value::Double(1.0)]);
        }
        let reports = engine.run_until_empty();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].transactions, 128);
        assert_eq!(reports[2].transactions, 44);
    }

    #[test]
    fn explicit_strategy_is_respected() {
        let (db, reg) = setup(64);
        let mut engine = GpuTxEngine::new(
            db,
            reg,
            EngineConfig::default().with_strategy(StrategyChoice::ForcePart),
        );
        for i in 0..64u64 {
            engine.submit(0, vec![Value::Int(i as i64), Value::Double(2.0)]);
        }
        let report = engine.execute_pending().unwrap();
        assert_eq!(report.strategy, StrategyKind::Part);
        let report2 = engine.execute_pending();
        assert!(report2.is_none(), "pool is empty");
    }

    #[test]
    fn parallel_executor_runs_through_the_engine() {
        use crate::builder::EngineBuilder;
        use gputx_exec::ExecutorChoice;
        let (db, reg) = setup(500);
        let mut results = Vec::new();
        for executor in [ExecutorChoice::Serial, ExecutorChoice::parallel(4)] {
            let (db, reg) = (db.clone(), reg.clone());
            let mut engine = EngineBuilder::new(db, reg)
                .with_bulk_size(1024)
                .with_executor(executor)
                .build();
            for i in 0..2500u64 {
                engine.submit(0, vec![Value::Int((i % 500) as i64), Value::Double(1.0)]);
            }
            let reports = engine.run_until_empty();
            assert_eq!(engine.total_committed(), 2500);
            results.push((
                engine.db().clone(),
                engine.results().to_vec(),
                reports.iter().map(|r| r.total()).sum::<SimDuration>(),
            ));
        }
        // Same final state, same result pool, same simulated time.
        assert!(results[0].0 == results[1].0);
        assert_eq!(results[0].1, results[1].1);
        assert_eq!(results[0].2, results[1].2);
    }

    #[test]
    #[allow(deprecated)] // the conversion shim must keep working until removal
    fn into_pipelined_carries_pending_transactions() {
        let (db, reg) = setup(100);
        let mut engine = GpuTxEngine::new(db, reg, EngineConfig::default());
        for i in 0..50u64 {
            engine.submit(0, vec![Value::Int((i % 100) as i64), Value::Double(2.0)]);
        }
        let streaming = engine.into_pipelined(PipelineConfig::default().with_max_bulk_size(16));
        let (db, stats) = streaming.finish().expect("pipeline stays healthy");
        assert_eq!(stats.committed, 50);
        assert_eq!(
            db.table_by_name("accounts").get(42, 1),
            Value::Double(102.0)
        );
    }

    #[test]
    fn profile_reflects_conflicts() {
        let (db, reg) = setup(10);
        let mut engine = GpuTxEngine::new(db, reg, EngineConfig::default());
        for _ in 0..10 {
            engine.submit(0, vec![Value::Int(3), Value::Double(1.0)]);
        }
        let profile = engine.profile_next_bulk().unwrap();
        assert_eq!(profile.size, 10);
        assert_eq!(profile.zero_set_size, 1);
        assert_eq!(profile.depth, 9);
        assert!(engine.profile_next_bulk().is_some());
    }
}
