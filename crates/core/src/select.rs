//! Rule-based execution strategy selection (Appendix D, Algorithm 1).
//!
//! The choice is driven by three structural parameters of the bulk's
//! T-dependency graph: the 0-set width `w0`, the cross-partition transaction
//! count `c` and the depth `d`.
//!
//! * If `w0 ≥ w̄0`, K-SET can fully utilize the GPU with little runtime
//!   overhead → choose K-SET.
//! * Otherwise, if `c ≤ c̄` or `d ≥ d̄`, PART's per-partition serialization is
//!   acceptable → choose PART.
//! * Otherwise → TPL.

use crate::config::{EngineConfig, SelectionThresholds, StrategyChoice};
use crate::profiler::BulkProfile;
use crate::strategy::StrategyKind;

/// Apply Algorithm 1 to a bulk profile.
pub fn choose_by_rule(profile: &BulkProfile, thresholds: &SelectionThresholds) -> StrategyKind {
    if profile.zero_set_size >= thresholds.min_zero_set {
        return StrategyKind::Kset;
    }
    if profile.cross_partition <= thresholds.max_cross_partition
        || profile.depth >= thresholds.min_depth_for_part
    {
        return StrategyKind::Part;
    }
    StrategyKind::Tpl
}

/// Resolve the engine configuration's strategy choice for a concrete bulk.
pub fn choose_strategy(config: &EngineConfig, profile: &BulkProfile) -> StrategyKind {
    match config.strategy {
        StrategyChoice::ForceTpl => StrategyKind::Tpl,
        StrategyChoice::ForcePart => StrategyKind::Part,
        StrategyChoice::ForceKset => StrategyKind::Kset,
        StrategyChoice::Auto => choose_by_rule(profile, &config.thresholds),
        // The stateless resolution: cost-model scoring without hysteresis.
        // Engines that execute a *stream* of bulks hold an
        // `adaptive::AdaptiveSelector` instead, which adds hysteresis and
        // decision stats on top of the same scores.
        StrategyChoice::Adaptive => crate::adaptive::cost_based_choice(config, profile),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(zero: usize, cross: usize, depth: u32) -> BulkProfile {
        BulkProfile {
            size: 10_000,
            depth,
            zero_set_size: zero,
            cross_partition: cross,
            distinct_partitions: 64,
            distinct_types: 1,
            type_histogram: vec![10_000],
        }
    }

    #[test]
    fn wide_zero_set_picks_kset() {
        let t = SelectionThresholds::default();
        assert_eq!(
            choose_by_rule(&profile(t.min_zero_set, 0, 1), &t),
            StrategyKind::Kset
        );
        assert_eq!(
            choose_by_rule(&profile(t.min_zero_set * 10, 10_000, 100), &t),
            StrategyKind::Kset
        );
    }

    #[test]
    fn narrow_zero_set_with_few_cross_partitions_picks_part() {
        let t = SelectionThresholds::default();
        assert_eq!(choose_by_rule(&profile(10, 0, 5), &t), StrategyKind::Part);
        // Deep graphs also prefer PART even with many cross-partition txns.
        assert_eq!(
            choose_by_rule(&profile(10, 10_000, t.min_depth_for_part), &t),
            StrategyKind::Part
        );
    }

    #[test]
    fn otherwise_tpl() {
        let t = SelectionThresholds::default();
        assert_eq!(
            choose_by_rule(
                &profile(10, t.max_cross_partition + 1, t.min_depth_for_part - 1),
                &t
            ),
            StrategyKind::Tpl
        );
    }

    #[test]
    fn forced_choices_override_the_rule() {
        let p = profile(1_000_000, 0, 0);
        let base = EngineConfig::default();
        assert_eq!(
            choose_strategy(&base.clone().with_strategy(StrategyChoice::ForceTpl), &p),
            StrategyKind::Tpl
        );
        assert_eq!(
            choose_strategy(&base.clone().with_strategy(StrategyChoice::ForcePart), &p),
            StrategyKind::Part
        );
        assert_eq!(
            choose_strategy(&base.clone().with_strategy(StrategyChoice::ForceKset), &p),
            StrategyKind::Kset
        );
        assert_eq!(choose_strategy(&base, &p), StrategyKind::Kset);
    }

    #[test]
    fn adaptive_choice_resolves_through_the_cost_model() {
        // A wide conflict-free bulk: the cost model, like the rule, lands on
        // K-SET (and the conflict-free invariant forbids TPL outright).
        let p = profile(10_000, 0, 0);
        let c = EngineConfig::default().with_strategy(StrategyChoice::Adaptive);
        assert_eq!(choose_strategy(&c, &p), StrategyKind::Kset);
    }
}
