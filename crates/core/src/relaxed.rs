//! Relaxed (serializability-only) bulk execution — Appendix G.
//!
//! The correctness definition of bulk execution (Definition 1) imposes a
//! *timestamp constraint*: the bulk must be equivalent to the sequential
//! execution in submission order. Some applications only need serializability,
//! and dropping the timestamp constraint removes the sort from bulk generation
//! and relaxes the locks:
//!
//! * TPL uses the basic 0/1 spin lock (Figure 10) instead of the counter-based
//!   lock, so no rank computation is needed and threads only wait for mutual
//!   exclusion.
//! * PART and K-SET replace the sort-based bulk generation with counter-based
//!   grouping (per-partition atomic counters plus a prefix sum).
//!
//! In this reproduction the relaxed mode is driven by
//! [`EngineConfig::relax_timestamps`]; this module provides a convenience
//! wrapper and the comparison used by the Figure 17 experiment. The functional
//! result is still produced by a deterministic, serializable order (our
//! simulator replays transactions in timestamp order), so relaxed execution
//! changes *cost*, not correctness.

use crate::bulk::Bulk;
use crate::config::EngineConfig;
use crate::strategy::{execute_bulk, ExecContext, StrategyKind, StrategyOutcome};
use gputx_sim::Gpu;
use gputx_storage::Database;
use gputx_txn::ProcedureRegistry;

/// Execute a bulk with the timestamp constraint relaxed, regardless of the
/// engine configuration's own `relax_timestamps` setting.
pub fn execute_bulk_relaxed(
    gpu: &mut Gpu,
    db: &mut Database,
    registry: &ProcedureRegistry,
    config: &EngineConfig,
    strategy: StrategyKind,
    bulk: &Bulk,
) -> StrategyOutcome {
    let relaxed = config.clone().with_relaxed_timestamps(true);
    let mut ctx = ExecContext {
        gpu,
        db,
        registry,
        config: &relaxed,
    };
    execute_bulk(&mut ctx, strategy, bulk)
}

/// Side-by-side comparison of strict vs relaxed execution of the same bulk on
/// cloned databases. Returns `(strict, relaxed)`.
pub fn compare_strict_vs_relaxed(
    db: &Database,
    registry: &ProcedureRegistry,
    config: &EngineConfig,
    strategy: StrategyKind,
    bulk: &Bulk,
) -> (StrategyOutcome, StrategyOutcome) {
    let strict_cfg = config.clone().with_relaxed_timestamps(false);
    let mut db_strict = db.clone();
    let mut gpu_strict = Gpu::new(config.device.clone());
    let mut ctx = ExecContext {
        gpu: &mut gpu_strict,
        db: &mut db_strict,
        registry,
        config: &strict_cfg,
    };
    let strict = execute_bulk(&mut ctx, strategy, bulk);

    let mut db_relaxed = db.clone();
    let mut gpu_relaxed = Gpu::new(config.device.clone());
    let relaxed = execute_bulk_relaxed(
        &mut gpu_relaxed,
        &mut db_relaxed,
        registry,
        config,
        strategy,
        bulk,
    );
    assert!(
        db_strict == db_relaxed,
        "strict and relaxed execution must agree on the final database"
    );
    (strict, relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Value};
    use gputx_txn::{BasicOp, ProcedureDef, TxnSignature};

    fn setup(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("value", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t).insert(vec![Value::Int(i), Value::Int(0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "increment",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_int();
                ctx.write(t, row, 1, Value::Int(v + 1));
            },
        ));
        (db, reg)
    }

    fn skewed_bulk(n: u64, rows: u64) -> Bulk {
        Bulk::new(
            (0..n)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int((i % rows) as i64)]))
                .collect(),
        )
    }

    #[test]
    fn relaxed_generation_is_cheaper_for_every_strategy() {
        let (db, reg) = setup(128);
        let config = EngineConfig::default();
        let bulk = skewed_bulk(2000, 128);
        for strategy in [StrategyKind::Tpl, StrategyKind::Part, StrategyKind::Kset] {
            let (strict, relaxed) = compare_strict_vs_relaxed(&db, &reg, &config, strategy, &bulk);
            assert!(
                relaxed.generation <= strict.generation,
                "{strategy}: relaxed generation {:?} should not exceed strict {:?}",
                relaxed.generation,
                strict.generation
            );
            assert_eq!(strict.committed, relaxed.committed);
        }
    }

    #[test]
    fn relaxed_tpl_execution_is_cheaper_under_contention() {
        // Figure 17: without the ordering constraint the locking overhead is
        // small and TPL's execution cost drops.
        let (db, reg) = setup(8);
        let config = EngineConfig::default();
        let bulk = skewed_bulk(4000, 8);
        let (strict, relaxed) =
            compare_strict_vs_relaxed(&db, &reg, &config, StrategyKind::Tpl, &bulk);
        assert!(relaxed.execution < strict.execution);
    }
}
