//! Undo-logging policy (Appendix D, "Logging").
//!
//! Re-do logging for durability is out of scope for GPUTx (the paper assumes
//! replication-style durability). For undo logging the paper distinguishes
//! *two-phase* transaction types — all reads and the abort decision happen
//! before any write, so no undo log is needed — from types that may abort
//! after writing. When a non-two-phase type exists, the transaction types that
//! can conflict with it also need undo logs, because a rollback of the
//! non-two-phase type must not clobber their updates.
//!
//! The policy is computed once per registered workload from the procedure
//! definitions and a conservative table-level conflict analysis: two types
//! conflict when their declared read/write sets may touch the same table with
//! at least one write.

use gputx_storage::Database;
use gputx_storage::Value;
use gputx_txn::{OpKind, ProcedureRegistry, TxnTypeId};
use std::collections::{HashMap, HashSet};

/// Which transaction types must write undo logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoggingPolicy {
    undo_types: HashSet<TxnTypeId>,
}

impl LoggingPolicy {
    /// A policy where no type needs undo logging.
    pub fn none() -> Self {
        Self::default()
    }

    /// Analyze a registry: probe each type's declared read/write set with the
    /// given sample parameters to learn which tables it reads and writes, then
    /// mark every non-two-phase type and every type that table-conflicts with
    /// one as requiring undo logs.
    pub fn analyze(
        registry: &ProcedureRegistry,
        db: &Database,
        sample_params: &HashMap<TxnTypeId, Vec<Value>>,
    ) -> Self {
        #[derive(Default, Clone)]
        struct TableAccess {
            reads: HashSet<u32>,
            writes: HashSet<u32>,
        }
        let mut access: Vec<TableAccess> = vec![TableAccess::default(); registry.num_types()];
        for ty in 0..registry.num_types() as TxnTypeId {
            if let Some(params) = sample_params.get(&ty) {
                let sig = gputx_txn::TxnSignature::new(0, ty, params.clone());
                for op in registry.read_write_set(&sig, db) {
                    match op.kind {
                        OpKind::Read => access[ty as usize].reads.insert(op.item.table()),
                        OpKind::Write => access[ty as usize].writes.insert(op.item.table()),
                    };
                }
            }
        }
        let table_conflict = |a: &TableAccess, b: &TableAccess| {
            a.writes
                .iter()
                .any(|t| b.writes.contains(t) || b.reads.contains(t))
                || b.writes.iter().any(|t| a.reads.contains(t))
        };

        let mut undo_types = HashSet::new();
        for ty in 0..registry.num_types() as TxnTypeId {
            if !registry.get(ty).two_phase {
                undo_types.insert(ty);
                for other in 0..registry.num_types() as TxnTypeId {
                    if other != ty && table_conflict(&access[ty as usize], &access[other as usize])
                    {
                        undo_types.insert(other);
                    }
                }
            }
        }
        LoggingPolicy { undo_types }
    }

    /// Whether the given type must write undo logs.
    pub fn needs_undo(&self, ty: TxnTypeId) -> bool {
        self.undo_types.contains(&ty)
    }

    /// Number of types that need undo logging.
    pub fn num_logged_types(&self) -> usize {
        self.undo_types.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType};
    use gputx_txn::{BasicOp, ProcedureDef};

    fn setup() -> (Database, ProcedureRegistry, HashMap<TxnTypeId, Vec<Value>>) {
        let mut db = Database::column_store();
        let ta = db.create_table(TableSchema::new(
            "a",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![0],
        ));
        let tb = db.create_table(TableSchema::new(
            "b",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![0],
        ));
        db.table_mut(ta).insert(vec![Value::Int(0), Value::Int(0)]);
        db.table_mut(tb).insert(vec![Value::Int(0), Value::Int(0)]);

        let mut reg = ProcedureRegistry::new();
        // Type 0: two-phase writer of table a.
        reg.register(ProcedureDef::new(
            "writer_a",
            move |_p, _| vec![BasicOp::write(DataItemId::new(ta, 0, 1))],
            |_| Some(0),
            move |ctx| ctx.write(ta, 0, 1, Value::Int(1)),
        ));
        // Type 1: NOT two-phase, writes table a too.
        reg.register(
            ProcedureDef::new(
                "risky_a",
                move |_p, _| vec![BasicOp::write(DataItemId::new(ta, 0, 1))],
                |_| Some(0),
                move |ctx| {
                    ctx.write(ta, 0, 1, Value::Int(2));
                    ctx.abort("late abort");
                },
            )
            .not_two_phase(),
        );
        // Type 2: two-phase writer of table b only.
        reg.register(ProcedureDef::new(
            "writer_b",
            move |_p, _| vec![BasicOp::write(DataItemId::new(tb, 0, 1))],
            |_| Some(0),
            move |ctx| ctx.write(tb, 0, 1, Value::Int(3)),
        ));
        let params: HashMap<TxnTypeId, Vec<Value>> =
            (0..3).map(|ty| (ty as TxnTypeId, vec![])).collect();
        (db, reg, params)
    }

    #[test]
    fn non_two_phase_and_conflicting_types_need_undo() {
        let (db, reg, params) = setup();
        let policy = LoggingPolicy::analyze(&reg, &db, &params);
        assert!(policy.needs_undo(1), "the non-two-phase type itself");
        assert!(policy.needs_undo(0), "types sharing table a with it");
        assert!(!policy.needs_undo(2), "types on disjoint tables are exempt");
        assert_eq!(policy.num_logged_types(), 2);
    }

    #[test]
    fn all_two_phase_means_no_logging() {
        let (db, reg, mut params) = setup();
        // Re-register only the two-phase types in a fresh registry.
        let mut clean = ProcedureRegistry::new();
        clean.register(reg.get(0).clone());
        clean.register(reg.get(2).clone());
        params.remove(&2);
        let policy = LoggingPolicy::analyze(&clean, &db, &params);
        assert_eq!(policy, LoggingPolicy::none());
        assert_eq!(policy.num_logged_types(), 0);
    }
}
