//! Arrival/response-time simulation (Figures 9 and 15).
//!
//! Transactions are submitted to GPUTx uniformly in time at a configurable
//! rate; after every fixed interval `t` the engine cuts a bulk from the pool
//! and executes it. Larger intervals produce larger bulks (better GPU
//! utilization, higher throughput) at the cost of a higher average response
//! time — the trade-off the paper's response-time figures chart.

use crate::bulk::Bulk;
use crate::config::EngineConfig;
use crate::strategy::{execute_bulk, ExecContext, StrategyKind};
use gputx_sim::{Gpu, SimDuration, Throughput};
use gputx_storage::{Database, Value};
use gputx_txn::{ProcedureRegistry, TxnSignature, TxnTypeId};
use serde::{Deserialize, Serialize};

/// Configuration of one pipeline simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Transaction arrival rate in transactions per second.
    pub arrival_rate_tps: f64,
    /// Interval between bulk cuts.
    pub interval: SimDuration,
    /// Length of the simulated arrival window.
    pub horizon: SimDuration,
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Number of transactions that completed.
    pub completed: u64,
    /// Number of bulks executed.
    pub bulks: usize,
    /// Average response time (bulk completion − submission) over all
    /// transactions.
    pub avg_response: SimDuration,
    /// Sustained throughput: completed transactions over the time until the
    /// last bulk finished.
    pub throughput: Throughput,
}

/// Simulate periodic bulk execution under a uniform arrival process.
///
/// `make_txn(i)` produces the type and parameters of the `i`-th arriving
/// transaction; transactions are executed with the given strategy.
pub fn simulate_pipeline(
    db: &mut Database,
    registry: &ProcedureRegistry,
    config: &EngineConfig,
    strategy: StrategyKind,
    pipeline: &PipelineConfig,
    mut make_txn: impl FnMut(u64) -> (TxnTypeId, Vec<Value>),
) -> PipelineReport {
    assert!(
        pipeline.arrival_rate_tps > 0.0,
        "arrival rate must be positive"
    );
    assert!(!pipeline.interval.is_zero(), "interval must be positive");
    let total = (pipeline.arrival_rate_tps * pipeline.horizon.as_secs()).floor() as u64;
    let inter_arrival = 1.0 / pipeline.arrival_rate_tps;

    let mut gpu = Gpu::new(config.device.clone());
    let mut completed = 0u64;
    let mut bulks = 0usize;
    let mut response_sum = 0.0f64;
    let mut device_free_at = 0.0f64; // when the GPU finishes its current bulk
    let mut next_txn = 0u64;
    let mut window_start = 0.0f64;

    while next_txn < total {
        let window_end = window_start + pipeline.interval.as_secs();
        // Collect the arrivals of this interval.
        let mut sigs = Vec::new();
        let mut arrivals = Vec::new();
        while next_txn < total && (next_txn as f64) * inter_arrival < window_end {
            let arrival = next_txn as f64 * inter_arrival;
            let (ty, params) = make_txn(next_txn);
            sigs.push(TxnSignature::new(next_txn, ty, params));
            arrivals.push(arrival);
            next_txn += 1;
        }
        window_start = window_end;
        if sigs.is_empty() {
            continue;
        }
        let bulk = Bulk::new(sigs);
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db,
            registry,
            config,
        };
        let outcome = execute_bulk(&mut ctx, strategy, &bulk);
        // The bulk can start once the interval has elapsed and the device is free.
        let start = window_end.max(device_free_at);
        let finish = start + outcome.total().as_secs();
        device_free_at = finish;
        for arrival in arrivals {
            response_sum += finish - arrival;
        }
        completed += outcome.transactions as u64;
        bulks += 1;
    }

    let avg_response = if completed == 0 {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(response_sum / completed as f64)
    };
    let throughput = Throughput::from_count(
        completed,
        SimDuration::from_secs(device_free_at.max(f64::EPSILON)),
    );
    PipelineReport {
        completed,
        bulks,
        avg_response,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType};
    use gputx_txn::{BasicOp, ProcedureDef};

    fn setup(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t).insert(vec![Value::Int(i), Value::Int(0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "touch",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_int();
                ctx.compute_calls(4);
                ctx.write(t, row, 1, Value::Int(v + 1));
            },
        ));
        (db, reg)
    }

    fn run(interval_ms: f64) -> PipelineReport {
        let (mut db, reg) = setup(10_000);
        let config = EngineConfig::default();
        let pipeline = PipelineConfig {
            arrival_rate_tps: 200_000.0,
            interval: SimDuration::from_millis(interval_ms),
            horizon: SimDuration::from_millis(100.0),
        };
        simulate_pipeline(&mut db, &reg, &config, StrategyKind::Kset, &pipeline, |i| {
            (0, vec![Value::Int((i % 10_000) as i64)])
        })
    }

    #[test]
    fn all_arrivals_complete() {
        let r = run(10.0);
        assert_eq!(r.completed, 20_000);
        assert_eq!(r.bulks, 10);
        assert!(r.avg_response.as_millis() > 0.0);
        assert!(r.throughput.tps() > 0.0);
    }

    #[test]
    fn larger_intervals_increase_response_time_and_throughput() {
        // The paper's Figure 9/15 trend: bigger bulks amortize overhead
        // (higher throughput) but transactions wait longer (higher response
        // time).
        let small = run(2.0);
        let large = run(25.0);
        assert!(large.avg_response > small.avg_response);
        assert!(large.throughput.tps() >= small.throughput.tps() * 0.9);
        assert!(large.bulks < small.bulks);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let (mut db, reg) = setup(10);
        let config = EngineConfig::default();
        let pipeline = PipelineConfig {
            arrival_rate_tps: 0.0,
            interval: SimDuration::from_millis(1.0),
            horizon: SimDuration::from_millis(1.0),
        };
        simulate_pipeline(&mut db, &reg, &config, StrategyKind::Tpl, &pipeline, |_| {
            (0, vec![])
        });
    }
}
