//! Streaming execution: the pipelined engine driver and the
//! arrival/response-time simulation.
//!
//! Two things live here:
//!
//! * [`PipelinedGpuTx`] — the *real* streaming mode: an always-on,
//!   multi-threaded front-end where clients `submit` transactions into a
//!   bounded admission queue and receive [`Ticket`] handles; bulks are formed
//!   adaptively (size or deadline), grouped (K-SET wave / PART partition-group
//!   construction) on a dedicated stage thread *while the previous bulk
//!   executes*, and committed in submission order. This is the paper's
//!   formation/execution pipelining (§3.2) turned into an actual
//!   multi-threaded engine, configured by
//!   [`PipelineConfig`].
//! * [`simulate_pipeline`] — the original arrival/response-time *simulation*
//!   behind the paper's Figures 9 and 15 (periodic bulk cuts under a uniform
//!   arrival process, simulated time only).

use crate::adaptive::{AdaptiveConfig, AdaptiveSelector, DecisionStats, DecisionStatsHandle};
use crate::bulk::Bulk;
use crate::config::{EngineConfig, PipelineConfig, StrategyChoice};
use crate::profiler::profile_bulk;
use crate::select::choose_strategy;
use crate::strategy::{execute_bulk, ExecContext, StrategyKind};
use gputx_durability::{BulkLogRecord, Durability};
use gputx_exec::{
    run_txn_planned, BulkPlanner, BulkRunner, BulkSizeKnob, ExecError, ExecPolicy, Executor,
    PipelineError, PipelineOptions, PipelineStats, PipelinedEngine, SubmitHandle, Ticket,
};
use gputx_sim::{Gpu, SimDuration, Throughput};
use gputx_storage::{Database, Value};
use gputx_txn::plan::{plan_kset_waves, plan_partition_groups, BulkPlan};
use gputx_txn::{AccessPlan, ProcedureRegistry, TxnId, TxnScratch, TxnSignature, TxnTypeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

// ---------------------------------------------------------------------------
// The streaming pipelined engine (driver over `gputx_exec::PipelinedEngine`).
// ---------------------------------------------------------------------------

/// Grouping-stage driver: plans bulks from signatures and a frozen snapshot.
///
/// The planner runs concurrently with execution, so it never sees the live
/// database: strategy selection and set construction use the declared
/// read/write sets and partition keys, which must be state-independent
/// (derivable from the signature alone — Appendix B's static analysis; every
/// bundled workload satisfies this).
#[derive(Debug)]
pub struct GpuTxPlanner {
    registry: ProcedureRegistry,
    /// Frozen copy of the database for read/write-set evaluation and
    /// profiling. Only populated when the configured strategy can ask for it
    /// (K-SET, Auto or Adaptive) — ForcePart/ForceTpl plan from signatures
    /// alone, so they skip the whole-database clone.
    snapshot: Option<Database>,
    config: EngineConfig,
    /// The cost-model selector, present under `StrategyChoice::Adaptive`.
    /// It lives here because this is the grouping stage: decisions happen
    /// where bulks are formed into plans, overlapped with execution.
    selector: Option<AdaptiveSelector>,
    /// Feedback channel to the admission stage: each adaptive decision
    /// publishes its bulk-size suggestion here.
    size_knob: Option<BulkSizeKnob>,
}

impl GpuTxPlanner {
    fn snapshot(&self) -> &Database {
        self.snapshot
            .as_ref()
            .expect("snapshot is populated for strategies that read it")
    }
}

/// The plan the grouping stage hands to the execution stage: the chosen
/// strategy, its precomputed schedule, and the pre-resolved access plan.
#[derive(Debug, Clone)]
pub struct GpuTxPlan {
    /// Strategy selected for this bulk (forced or rule-based).
    pub strategy: StrategyKind,
    /// The precomputed schedule (waves / groups / serial order).
    pub plan: BulkPlan,
    /// The gather step: every planned procedure's index keys resolved to
    /// dense row ids, built off the execution thread against the planner's
    /// snapshot. The runner revalidates it against the live database's index
    /// versions before executing: entries through since-mutated indexes
    /// re-probe transparently (and, because the snapshot is frozen at
    /// pipeline start, stay degraded for churning indexes — entries through
    /// static indexes keep the fast path; see `gputx_txn::access`). `None`
    /// when the planner has no snapshot (ForcePart/ForceTpl) or no procedure
    /// declares a plan callback.
    pub access: Option<AccessPlan>,
}

impl BulkPlanner for GpuTxPlanner {
    type Plan = GpuTxPlan;

    fn plan(&mut self, bulk: &[TxnSignature]) -> GpuTxPlan {
        let strategy = match self.config.strategy {
            StrategyChoice::ForceTpl => StrategyKind::Tpl,
            StrategyChoice::ForcePart => StrategyKind::Part,
            StrategyChoice::ForceKset => StrategyKind::Kset,
            StrategyChoice::Auto => {
                let profile = profile_bulk(&self.registry, self.snapshot(), bulk);
                choose_strategy(&self.config, &profile)
            }
            StrategyChoice::Adaptive => {
                let profile = profile_bulk(&self.registry, self.snapshot(), bulk);
                let selector = self
                    .selector
                    .as_mut()
                    .expect("Adaptive strategy always installs a selector");
                let decision = selector.decide(&profile);
                if let Some(knob) = self.size_knob.as_ref() {
                    knob.set(decision.suggested_bulk_size);
                }
                decision.strategy
            }
        };
        let plan = match strategy {
            StrategyKind::Kset => {
                let snapshot = self.snapshot();
                let ops: Vec<_> = bulk
                    .iter()
                    .map(|sig| (sig.id, self.registry.read_write_set(sig, snapshot)))
                    .collect();
                BulkPlan::ConflictFreeWaves(plan_kset_waves(&ops))
            }
            StrategyKind::Part => {
                let keys: Vec<(TxnId, Option<u64>)> = bulk
                    .iter()
                    .map(|sig| (sig.id, self.registry.partition_key(sig)))
                    .collect();
                match plan_partition_groups(&keys, self.config.partition_size) {
                    Some(groups) => BulkPlan::DisjointGroups(groups),
                    // Cross-partition transactions: the strategy-level TPL
                    // fallback of §5.2, i.e. serial timestamp order.
                    None => BulkPlan::Serial,
                }
            }
            StrategyKind::Tpl => BulkPlan::Serial,
        };
        // The gather step, overlapped with the previous bulk's execution.
        // Resolved against the frozen snapshot; the runner revalidates
        // against the live index versions before use.
        let access = self
            .snapshot
            .as_ref()
            .map(|snapshot| AccessPlan::build(&self.registry, snapshot, bulk));
        let access = access.filter(|a| !a.is_empty());
        GpuTxPlan {
            strategy,
            plan,
            access,
        }
    }
}

/// Execution-stage driver: owns the live database and applies each bulk with
/// the precomputed schedule on the configured host [`Executor`].
///
/// Execution is purely functional (no simulated-GPU cost model): the
/// pipelined engine measures *wall-clock* stage timings instead. The replay
/// order per strategy is identical to the one-shot strategies' — waves in
/// extraction order, partition groups in partition order, serial in timestamp
/// order — so the final database state is bit-identical to
/// [`execute_bulk`] over the same bulks.
///
/// # Failure semantics
///
/// A panicking stored procedure fails its bulk (every ticket resolves with
/// `BulkFailed`) and the pipeline keeps serving. How much of the failed bulk
/// reached the database depends on where it failed: on the parallel executor
/// a failing wave/group-set makes no state change (no shard delta is
/// merged), but *earlier* K-SET waves of the same bulk were already merged,
/// and serial execution mutates in place up to the panic. The failed bulk's
/// *buffered inserts* are always discarded — they never leak into a later
/// bulk's batched-insert application.
#[derive(Debug)]
pub struct GpuTxRunner {
    db: Database,
    registry: ProcedureRegistry,
    executor: Box<dyn Executor>,
    policy: ExecPolicy,
    /// Redo logging, when the engine config names a durability directory.
    /// The execution stage is the pipeline's group-commit point: a bulk's
    /// record is appended (and fsynced per policy) before the bulk reaches
    /// the commit stage, so tickets resolve only after their bulk is durable
    /// per policy — the fsync wait is naturally folded into the ticket
    /// latencies `PipelineStats` reports as p50/p99.
    durability: Option<Durability>,
    /// Log shipping, when this engine is a replication primary. The same
    /// group-commit point that appends a bulk's redo record to the WAL
    /// publishes it into the hub, which fans it out to followers — shipping
    /// and local durability always agree because they consume the *same*
    /// record. Publishing never blocks on a follower (bounded queues shed).
    replication: Option<gputx_replication::PrimaryHub>,
    /// HTAP read path, when the engine feeds an analytics session (see
    /// `EngineBuilder::analytics`). The session consumes the same record at
    /// the same group-commit point, last in the chain: update propagation
    /// into its snapshot mirror is a redo replay plus dirty-chunk marks;
    /// the expensive copy-on-write rebuild is paid by scanners at snapshot
    /// cut time, never here.
    analytics: Option<gputx_analytics::AnalyticsSession>,
    /// Supervised-heal policy for a poisoned WAL writer (see
    /// [`GpuTxRunner::heal_or_degrade`]).
    heal_policy: gputx_faults::HealPolicy,
    /// Automatic heals still allowed before degrading.
    heals_left: u32,
    /// Shared health surface updated at the group-commit point.
    health: gputx_faults::Health,
}

/// Robustness knobs threaded from `EngineBuilder` into the engines: the
/// installed fault plane (if any), the WAL heal policy and the shared
/// health surface.
#[derive(Debug, Default, Clone)]
pub(crate) struct RobustnessParts {
    pub(crate) faults: Option<gputx_faults::FaultInjector>,
    pub(crate) heal_policy: gputx_faults::HealPolicy,
    pub(crate) health: gputx_faults::Health,
}

impl GpuTxRunner {
    /// Drop every table's pending insert buffer: called before a bulk (to
    /// clear leftovers of a predecessor that failed or unwound mid-run) and
    /// after a failed bulk, so a failed bulk's inserts are never applied by a
    /// later bulk's `apply_insert_buffers`.
    fn discard_insert_buffers(&mut self) {
        for t in 0..self.db.num_tables() {
            self.db
                .table_mut(t as gputx_storage::catalog::TableId)
                .clear_insert_buffer();
        }
    }

    fn run_plan(
        &mut self,
        bulk: &[TxnSignature],
        plan: &GpuTxPlan,
        outcomes: &mut Vec<(TxnId, gputx_txn::TxnOutcome)>,
    ) -> Result<(), ExecError> {
        let access = plan.access.as_ref();
        let by_id: HashMap<TxnId, &TxnSignature> = bulk.iter().map(|s| (s.id, s)).collect();
        match &plan.plan {
            BulkPlan::ConflictFreeWaves(waves) => {
                for wave in waves {
                    let sigs: Vec<&TxnSignature> = wave.iter().map(|id| by_id[id]).collect();
                    let executed = self.executor.run_conflict_free(
                        &mut self.db,
                        &self.registry,
                        &self.policy,
                        &sigs,
                        access,
                    )?;
                    outcomes.extend(executed.into_iter().map(|t| (t.id, t.outcome)));
                }
            }
            BulkPlan::DisjointGroups(groups) => {
                let group_refs: Vec<Vec<&TxnSignature>> = groups
                    .iter()
                    .map(|g| g.iter().map(|id| by_id[id]).collect())
                    .collect();
                let executed = self.executor.run_groups(
                    &mut self.db,
                    &self.registry,
                    &self.policy,
                    &group_refs,
                    access,
                )?;
                outcomes.extend(executed.into_iter().flatten().map(|t| (t.id, t.outcome)));
            }
            BulkPlan::Serial => {
                // `bulk` arrives in ascending id order from admission.
                let mut scratch = TxnScratch::default();
                for sig in bulk {
                    let t = run_txn_planned(
                        &mut self.db,
                        &self.registry,
                        &self.policy,
                        sig,
                        access,
                        &mut scratch,
                    );
                    outcomes.push((t.id, t.outcome));
                }
            }
        }
        Ok(())
    }

    /// Supervised recovery from a failed redo-record append. The failing
    /// bulk's effects are already applied to the live database, so a fresh
    /// checkpoint absorbs them: [`Durability::heal`] snapshots the full
    /// state under a fresh log epoch and advances the LSN past the record
    /// that never landed — after which this bulk is durable (via the
    /// snapshot) and the writer is clean again. Each heal consumes one unit
    /// of the bounded [`HealPolicy::heal_budget`](gputx_faults::HealPolicy);
    /// once it is spent (or healing itself keeps failing) the engine
    /// degrades visibly instead of panicking: reads are always served, and
    /// writes either continue unlogged
    /// ([`writes_when_degraded`](gputx_faults::HealPolicy) — durability is
    /// dropped, the health surface reports `Degraded`) or keep failing with
    /// the poisoned writer's error so no caller is ever told "durable" for
    /// work the log cannot reproduce.
    fn heal_or_degrade(&mut self, cause: &std::io::Error) -> Result<(), ExecError> {
        let durability = self
            .durability
            .as_mut()
            .expect("heal_or_degrade is only reached with durability configured");
        while self.heals_left > 0 {
            self.heals_left -= 1;
            if durability.heal(&self.db, 1).is_ok() {
                self.health.record_heal();
                return Ok(());
            }
        }
        self.health.set_wal(gputx_faults::WalState::Degraded);
        if self.heal_policy.writes_when_degraded {
            // The log is superseded; drop it and serve on, unlogged. The
            // hub/analytics keep numbering from their own counters, which
            // never saw the failed record either.
            self.durability = None;
            Ok(())
        } else {
            Err(ExecError::LogAppendFailed {
                message: format!("durability degraded (heal budget exhausted): {cause}"),
            })
        }
    }
}

impl BulkRunner for GpuTxRunner {
    type Plan = GpuTxPlan;
    type Output = Database;

    fn run(
        &mut self,
        bulk: Vec<TxnSignature>,
        mut plan: GpuTxPlan,
    ) -> Result<Vec<(TxnId, gputx_txn::TxnOutcome)>, ExecError> {
        // A predecessor bulk that failed (typed error) or unwound (caught by
        // the execution stage) may have left buffered inserts behind;
        // applying them here would leak another bulk's partial effects.
        self.discard_insert_buffers();
        // The access plan was resolved against the planner's frozen snapshot;
        // earlier bulks may have mutated indexes since (applied inserts).
        // Mark entries of since-mutated indexes stale so they re-probe the
        // live database at consume time — correctness never depends on the
        // snapshot's freshness.
        if let Some(access) = plan.access.as_mut() {
            access.revalidate(&self.db);
        }
        // Arm dirty-field tracking so the bulk's physical writes can be read
        // back into its redo record after commit. Unlike the access plan,
        // the capture cannot move to the grouping stage: it brackets the
        // live database's mutation window.
        let capture =
            (self.durability.is_some() || self.replication.is_some() || self.analytics.is_some())
                .then(|| gputx_durability::WriteCapture::begin(&mut self.db));
        let mut outcomes = Vec::with_capacity(bulk.len());
        if let Err(e) = self.run_plan(&bulk, &plan, &mut outcomes) {
            self.discard_insert_buffers();
            return Err(e);
        }
        self.db.apply_insert_buffers();
        outcomes.sort_by_key(|(id, _)| *id);
        if let Some(capture) = capture {
            // Group commit: one redo record serves both consumers. The WAL
            // append (and its policy-driven fsync) must land before the
            // commit stage resolves this bulk's tickets. An append failure
            // fails this bulk's tickets AND poisons the log writer, so every
            // later bulk's tickets fail too — the functional effects are
            // applied, but nobody is ever told "durable" for work the log
            // cannot reproduce. A checkpoint (full snapshot + fresh log
            // epoch) is the way back. Publishing to followers happens after
            // the local append: a record a follower holds is always one the
            // primary logged.
            let lsn = match (&self.durability, &self.replication, &self.analytics) {
                (Some(d), _, _) => d.next_lsn(),
                (None, Some(hub), _) => hub.next_lsn(),
                (None, None, Some(session)) => session.next_lsn(),
                (None, None, None) => unreachable!("capture exists only with a consumer"),
            };
            let record = BulkLogRecord {
                lsn,
                write_set: capture.finish(&mut self.db),
            };
            if let Some(durability) = self.durability.as_mut() {
                if let Err(e) = durability.append_record(&record) {
                    self.heal_or_degrade(&e)?;
                }
            }
            if let Some(hub) = self.replication.as_ref() {
                hub.publish(&record);
                let acks = hub.follower_acks();
                self.health.set_replication(
                    acks.len() as u64,
                    hub.next_lsn(),
                    acks.iter().copied().min().unwrap_or(0),
                );
            }
            if let Some(session) = self.analytics.as_ref() {
                session.publish(&record);
            }
        }
        Ok(outcomes)
    }

    fn finish(mut self) -> Database {
        // Leftover buffers of a failed final bulk must not survive into the
        // returned state.
        self.discard_insert_buffers();
        self.db
    }
}

/// The streaming GPUTx engine: continuous transaction ingest with overlapped
/// grouping and execution.
///
/// ```text
/// submit() ─▶ admission ─▶ grouping ─▶ execution ─▶ commit ─▶ Ticket resolves
///             (size/deadline) (plan N+1 ∥ run N)    (submission order)
/// ```
///
/// Prefer this over the one-shot [`GpuTxEngine`](crate::GpuTxEngine) when
/// transactions arrive continuously and per-transaction latency matters;
/// prefer one-shot bulks for offline/batch runs and for the simulated-GPU
/// cost model (the pipeline measures wall-clock only).
#[derive(Debug)]
pub struct PipelinedGpuTx {
    engine: PipelinedEngine<GpuTxPlanner, GpuTxRunner>,
    health: gputx_faults::Health,
    /// Observer handle onto the adaptive selector's decision stats; present
    /// only under `StrategyChoice::Adaptive`.
    decisions: Option<DecisionStatsHandle>,
}

impl PipelinedGpuTx {
    /// Start the streaming engine over a database and registered transaction
    /// types. `engine_config` supplies strategy selection, thresholds and
    /// partition size; `pipeline` supplies the admission knobs and the
    /// execution-stage host executor.
    pub fn new(
        db: Database,
        registry: ProcedureRegistry,
        engine_config: EngineConfig,
        pipeline: PipelineConfig,
    ) -> Self {
        Self::with_parts(
            db,
            registry,
            engine_config,
            pipeline,
            None,
            None,
            RobustnessParts::default(),
        )
    }

    /// [`PipelinedGpuTx::new`] plus an optional replication hub and
    /// analytics session whose mirrors were seeded from `db`, and the
    /// robustness surface (fault plane, heal policy, health) — the
    /// `EngineBuilder::build_pipelined` entry point.
    pub(crate) fn with_parts(
        db: Database,
        registry: ProcedureRegistry,
        engine_config: EngineConfig,
        pipeline: PipelineConfig,
        replication: Option<gputx_replication::PrimaryHub>,
        analytics: Option<gputx_analytics::AnalyticsSession>,
        robustness: RobustnessParts,
    ) -> Self {
        let needs_snapshot = matches!(
            engine_config.strategy,
            StrategyChoice::ForceKset | StrategyChoice::Auto | StrategyChoice::Adaptive
        );
        let mut durability = Durability::from_config(&engine_config.durability, &db)
            .unwrap_or_else(|e| panic!("cannot initialize durability: {e}"));
        let RobustnessParts {
            faults,
            heal_policy,
            health,
        } = robustness;
        if let Some(injector) = faults.as_ref() {
            if let Some(d) = durability.as_mut() {
                d.set_faults(injector);
            }
            health.attach_injector(injector.clone());
        }
        health.set_wal(if durability.is_some() {
            gputx_faults::WalState::Healthy
        } else {
            gputx_faults::WalState::Disabled
        });
        // A freshly created WAL numbers records from 0; a hub that already
        // shipped records must restart its stream too (new epoch, followers
        // resync) so both consumers keep numbering the same records
        // identically.
        if durability.is_some() {
            if let Some(hub) = replication.as_ref().filter(|h| h.next_lsn() != 0) {
                hub.rotate_epoch();
            }
        }
        // Under Adaptive the grouping stage holds the selector (decisions
        // happen where bulks become plans) and feeds sizing suggestions back
        // into admission through a shared knob.
        let adaptive = matches!(engine_config.strategy, StrategyChoice::Adaptive);
        let selector = adaptive.then(|| {
            AdaptiveSelector::new(
                &engine_config,
                AdaptiveConfig {
                    bulk_ceiling: pipeline.max_bulk_size,
                    ..AdaptiveConfig::default()
                },
            )
        });
        let decisions = selector.as_ref().map(|s| s.stats_handle());
        let size_knob = adaptive.then(BulkSizeKnob::new);
        let planner = GpuTxPlanner {
            registry: registry.clone(),
            snapshot: needs_snapshot.then(|| db.clone()),
            config: engine_config,
            selector,
            size_knob: size_knob.clone(),
        };
        let runner = GpuTxRunner {
            db,
            registry,
            executor: pipeline.executor.build(),
            policy: ExecPolicy::functional(),
            durability,
            replication,
            analytics,
            heals_left: heal_policy.heal_budget,
            heal_policy,
            health: health.clone(),
        };
        let opts = PipelineOptions {
            max_bulk_size: pipeline.max_bulk_size,
            max_wait: Duration::from_micros(pipeline.max_wait_us),
            queue_depth: pipeline.queue_depth,
        };
        PipelinedGpuTx {
            engine: PipelinedEngine::new_with_knob(planner, runner, opts, size_knob),
            health,
            decisions,
        }
    }

    /// Snapshot of the adaptive selector's per-bulk decision stats (strategy
    /// histogram, switches, sizing); `None` unless the engine was built with
    /// `StrategyChoice::Adaptive` (`EngineBuilder::adaptive()`). Available
    /// live, while the engine is still running.
    pub fn decision_stats(&self) -> Option<DecisionStats> {
        self.decisions.as_ref().map(|d| d.snapshot())
    }

    /// The engine's shared health surface: WAL state (including automatic
    /// heals and degradation), replication progress and fault-plane
    /// activity, updated at the group-commit point. Clone it into a server
    /// (`Server::serve_health`) to answer wire `Health` requests.
    pub fn health(&self) -> gputx_faults::Health {
        self.health.clone()
    }

    /// Submit a transaction; blocks while the admission queue is full
    /// (backpressure). The returned [`Ticket`] resolves with the
    /// transaction's id and outcome when its bulk commits.
    pub fn submit(&self, ty: TxnTypeId, params: Vec<Value>) -> Result<Ticket, PipelineError> {
        self.engine.submit(ty, params)
    }

    /// Non-blocking [`PipelinedGpuTx::submit`]; fails with
    /// [`PipelineError::QueueFull`] instead of blocking.
    pub fn try_submit(&self, ty: TxnTypeId, params: Vec<Value>) -> Result<Ticket, PipelineError> {
        self.engine.try_submit(ty, params)
    }

    /// A cloneable [`SubmitHandle`] for submitter threads that may outlive or
    /// race this engine's shutdown — the ingest surface a network front door
    /// (`gputx-server`) serves connections from. After shutdown every handle
    /// call fails with [`PipelineError::ShutDown`] instead of blocking the
    /// engine's drop.
    pub fn handle(&self) -> SubmitHandle {
        self.engine.handle()
    }

    /// Close the currently open partial bulk and block until everything
    /// submitted before the flush has committed.
    pub fn flush(&self) -> Result<(), PipelineError> {
        self.engine.flush()
    }

    /// Drain and stop the stage threads. Idempotent; afterwards `submit`
    /// returns [`PipelineError::ShutDown`].
    pub fn shutdown(&mut self) {
        self.engine.shutdown()
    }

    /// Run statistics (throughput, latency percentiles, per-stage busy time);
    /// `None` before shutdown.
    pub fn stats(&self) -> Option<&PipelineStats> {
        self.engine.stats()
    }

    /// Shut down (if still running) and hand back the final database plus the
    /// run statistics.
    pub fn finish(self) -> Result<(Database, PipelineStats), PipelineError> {
        self.engine.finish()
    }
}

// ---------------------------------------------------------------------------
// Arrival/response-time simulation (Figures 9 and 15).
// ---------------------------------------------------------------------------

/// Configuration of one arrival/response-time simulation run (Figures 9/15):
/// transactions arrive uniformly in time and the engine cuts a bulk every
/// fixed interval. Purely simulated time — for the real streaming engine see
/// [`PipelinedGpuTx`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSimConfig {
    /// Transaction arrival rate in transactions per second.
    pub arrival_rate_tps: f64,
    /// Interval between bulk cuts.
    pub interval: SimDuration,
    /// Length of the simulated arrival window.
    pub horizon: SimDuration,
}

/// Result of an arrival/response-time simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSimReport {
    /// Number of transactions that completed.
    pub completed: u64,
    /// Number of bulks executed.
    pub bulks: usize,
    /// Average response time (bulk completion − submission) over all
    /// transactions.
    pub avg_response: SimDuration,
    /// Sustained throughput: completed transactions over the time until the
    /// last bulk finished.
    pub throughput: Throughput,
}

/// Simulate periodic bulk execution under a uniform arrival process.
///
/// `make_txn(i)` produces the type and parameters of the `i`-th arriving
/// transaction; transactions are executed with the given strategy. Larger
/// intervals produce larger bulks (better GPU utilization, higher throughput)
/// at the cost of a higher average response time — the trade-off the paper's
/// response-time figures chart.
pub fn simulate_pipeline(
    db: &mut Database,
    registry: &ProcedureRegistry,
    config: &EngineConfig,
    strategy: StrategyKind,
    pipeline: &IntervalSimConfig,
    mut make_txn: impl FnMut(u64) -> (TxnTypeId, Vec<Value>),
) -> IntervalSimReport {
    assert!(
        pipeline.arrival_rate_tps > 0.0,
        "arrival rate must be positive"
    );
    assert!(!pipeline.interval.is_zero(), "interval must be positive");
    let total = (pipeline.arrival_rate_tps * pipeline.horizon.as_secs()).floor() as u64;
    let inter_arrival = 1.0 / pipeline.arrival_rate_tps;

    let mut gpu = Gpu::new(config.device.clone());
    let mut completed = 0u64;
    let mut bulks = 0usize;
    let mut response_sum = 0.0f64;
    let mut device_free_at = 0.0f64; // when the GPU finishes its current bulk
    let mut next_txn = 0u64;
    let mut window_start = 0.0f64;

    while next_txn < total {
        let window_end = window_start + pipeline.interval.as_secs();
        // Collect the arrivals of this interval.
        let mut sigs = Vec::new();
        let mut arrivals = Vec::new();
        while next_txn < total && (next_txn as f64) * inter_arrival < window_end {
            let arrival = next_txn as f64 * inter_arrival;
            let (ty, params) = make_txn(next_txn);
            sigs.push(TxnSignature::new(next_txn, ty, params));
            arrivals.push(arrival);
            next_txn += 1;
        }
        window_start = window_end;
        if sigs.is_empty() {
            continue;
        }
        let bulk = Bulk::new(sigs);
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db,
            registry,
            config,
        };
        let outcome = execute_bulk(&mut ctx, strategy, &bulk);
        // The bulk can start once the interval has elapsed and the device is free.
        let start = window_end.max(device_free_at);
        let finish = start + outcome.total().as_secs();
        device_free_at = finish;
        for arrival in arrivals {
            response_sum += finish - arrival;
        }
        completed += outcome.transactions as u64;
        bulks += 1;
    }

    let avg_response = if completed == 0 {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(response_sum / completed as f64)
    };
    let throughput = Throughput::from_count(
        completed,
        SimDuration::from_secs(device_free_at.max(f64::EPSILON)),
    );
    IntervalSimReport {
        completed,
        bulks,
        avg_response,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_exec::ExecutorChoice;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType};
    use gputx_txn::{BasicOp, ProcedureDef};

    fn setup(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t).insert(vec![Value::Int(i), Value::Int(0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "touch",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_int();
                ctx.compute_calls(4);
                ctx.write(t, row, 1, Value::Int(v + 1));
            },
        ));
        (db, reg)
    }

    fn run(interval_ms: f64) -> IntervalSimReport {
        let (mut db, reg) = setup(10_000);
        let config = EngineConfig::default();
        let pipeline = IntervalSimConfig {
            arrival_rate_tps: 200_000.0,
            interval: SimDuration::from_millis(interval_ms),
            horizon: SimDuration::from_millis(100.0),
        };
        simulate_pipeline(&mut db, &reg, &config, StrategyKind::Kset, &pipeline, |i| {
            (0, vec![Value::Int((i % 10_000) as i64)])
        })
    }

    #[test]
    fn all_arrivals_complete() {
        let r = run(10.0);
        assert_eq!(r.completed, 20_000);
        assert_eq!(r.bulks, 10);
        assert!(r.avg_response.as_millis() > 0.0);
        assert!(r.throughput.tps() > 0.0);
    }

    #[test]
    fn larger_intervals_increase_response_time_and_throughput() {
        // The paper's Figure 9/15 trend: bigger bulks amortize overhead
        // (higher throughput) but transactions wait longer (higher response
        // time).
        let small = run(2.0);
        let large = run(25.0);
        assert!(large.avg_response > small.avg_response);
        assert!(large.throughput.tps() >= small.throughput.tps() * 0.9);
        assert!(large.bulks < small.bulks);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let (mut db, reg) = setup(10);
        let config = EngineConfig::default();
        let pipeline = IntervalSimConfig {
            arrival_rate_tps: 0.0,
            interval: SimDuration::from_millis(1.0),
            horizon: SimDuration::from_millis(1.0),
        };
        simulate_pipeline(&mut db, &reg, &config, StrategyKind::Tpl, &pipeline, |_| {
            (0, vec![])
        });
    }

    // ---- streaming engine ---------------------------------------------------

    /// The pipelined engine must reach the same final state as replaying the
    /// stream sequentially, for every strategy and executor.
    #[test]
    fn pipelined_engine_matches_sequential_replay() {
        let n = 600usize;
        let (db0, reg) = setup(64);
        // Sequential replay in timestamp order.
        let mut seq_db = db0.clone();
        for i in 0..n {
            let sig = TxnSignature::new(i as u64, 0, vec![Value::Int((i % 7) as i64)]);
            reg.execute(&sig, &mut seq_db);
        }
        seq_db.apply_insert_buffers();

        for strategy in [
            StrategyChoice::ForceKset,
            StrategyChoice::ForcePart,
            StrategyChoice::ForceTpl,
            StrategyChoice::Auto,
        ] {
            for executor in [ExecutorChoice::Serial, ExecutorChoice::parallel(2)] {
                let engine = PipelinedGpuTx::new(
                    db0.clone(),
                    reg.clone(),
                    EngineConfig::default().with_strategy(strategy),
                    PipelineConfig::default()
                        .with_max_bulk_size(128)
                        .with_max_wait_us(10_000_000)
                        .with_executor(executor),
                );
                let tickets: Vec<Ticket> = (0..n)
                    .map(|i| {
                        engine
                            .submit(0, vec![Value::Int((i % 7) as i64)])
                            .expect("engine accepts submissions")
                    })
                    .collect();
                let (db, stats) = engine.finish().expect("stages stay healthy");
                assert!(
                    db == seq_db,
                    "{strategy:?}/{executor}: final state must equal sequential replay"
                );
                assert_eq!(stats.committed, n as u64);
                assert_eq!(stats.bulks(), (n as u64).div_ceil(128));
                for (i, t) in tickets.iter().enumerate() {
                    let (id, outcome) = t.wait().expect("ticket resolves");
                    assert_eq!(id, i as u64);
                    assert!(outcome.is_committed());
                }
            }
        }
    }

    /// A bulk that fails mid-run (panicking procedure after buffered inserts)
    /// must fail all its tickets, and its buffered inserts must never be
    /// applied by a later healthy bulk.
    #[test]
    fn failed_bulk_inserts_do_not_leak_into_later_bulks() {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "log",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![0],
        ));
        let mut reg = ProcedureRegistry::new();
        // Buffered insert keyed by a per-transaction dummy item (conflict-free).
        reg.register(ProcedureDef::new(
            "ins",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let k = ctx.param_int(0);
                ctx.insert(t, vec![Value::Int(k), Value::Int(1)]);
            },
        ));
        reg.register(ProcedureDef::new(
            "boom",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |_ctx| panic!("procedure bug"),
        ));
        let engine = PipelinedGpuTx::new(
            db,
            reg,
            EngineConfig::default().with_strategy(StrategyChoice::ForceKset),
            PipelineConfig::default()
                .with_max_bulk_size(4)
                .with_max_wait_us(10_000_000),
        );
        // Bulk 1: two inserts execute, then the panic fails the bulk with two
        // inserts still buffered.
        let bulk1: Vec<Ticket> = [(0u32, 1i64), (0, 2), (1, 3), (0, 4)]
            .iter()
            .map(|&(ty, k)| engine.submit(ty, vec![Value::Int(k)]).unwrap())
            .collect();
        // Bulk 2: four healthy inserts.
        let bulk2: Vec<Ticket> = (10..14)
            .map(|k| engine.submit(0, vec![Value::Int(k)]).unwrap())
            .collect();
        for ticket in &bulk1 {
            assert!(matches!(ticket.wait(), Err(PipelineError::BulkFailed(_))));
        }
        for ticket in &bulk2 {
            assert!(ticket.wait().is_ok());
        }
        let (db, stats) = engine.finish().unwrap();
        assert_eq!(stats.bulks_failed, 1);
        assert_eq!(stats.committed, 4);
        assert_eq!(
            db.table_by_name("log").num_rows(),
            4,
            "only the healthy bulk's inserts may be applied"
        );
        assert_eq!(db.table_by_name("log").pending_inserts(), 0);
    }

    #[test]
    fn deadline_bounds_latency_without_flush() {
        let (db0, reg) = setup(8);
        let engine = PipelinedGpuTx::new(
            db0,
            reg,
            EngineConfig::default(),
            PipelineConfig::default()
                .with_max_bulk_size(1_000_000)
                .with_max_wait_us(3_000),
        );
        let ticket = engine.submit(0, vec![Value::Int(1)]).unwrap();
        // The deadline (not size, not flush) must commit this transaction.
        assert!(ticket.wait().is_ok());
        let (_, stats) = engine.finish().unwrap();
        assert!(stats.closes.by_timer >= 1);
    }
}
