//! Transaction-type grouping to reduce branch divergence.
//!
//! Transactions of different types take different branches of the combined
//! kernel's `switch` clause; if threads of a warp run different types, the
//! warp serializes the branches (Appendix A). GPUTx therefore groups the
//! transactions of a bulk by type before execution. Grouping is a multi-pass
//! radix partitioning of the type id; each pass separates one more bit, so
//! after `p` passes a warp sees at most `ceil(T / 2^p)` distinct types. The
//! number of passes is a tuning knob: more passes cost more grouping time but
//! reduce divergence less and less (Appendix D, Figures 3 and 12).

use gputx_sim::{Gpu, SimDuration, ThreadTrace};
use gputx_txn::TxnTypeId;

/// Result of grouping a bulk by transaction type.
#[derive(Debug, Clone)]
pub struct GroupingOutcome {
    /// Permutation: `order[i]` is the index (into the original bulk) of the
    /// transaction that should occupy thread slot `i`.
    pub order: Vec<usize>,
    /// Simulated time spent on the radix-partitioning passes.
    pub time: SimDuration,
    /// Number of passes actually performed.
    pub passes: u32,
}

/// Number of grouping passes that fully groups `num_types` types (one bit per
/// pass).
pub fn passes_for_full_grouping(num_types: usize) -> u32 {
    if num_types <= 1 {
        0
    } else {
        (num_types as f64).log2().ceil() as u32
    }
}

/// Group a bulk's thread slots by transaction type using at most `max_passes`
/// single-bit radix-partitioning passes.
///
/// `types[i]` is the type of the transaction in slot `i`. The permutation is
/// stable within equal keys so the timestamp order inside a type group is
/// preserved.
pub fn group_by_type(
    gpu: &mut Gpu,
    types: &[TxnTypeId],
    num_types: usize,
    max_passes: u32,
) -> GroupingOutcome {
    let needed = passes_for_full_grouping(num_types);
    let passes = needed.min(max_passes);
    let mut order: Vec<usize> = (0..types.len()).collect();
    let mut time = SimDuration::ZERO;
    // One radix pass reads the key and payload and scatters them.
    let mut pass_trace = ThreadTrace::new(0);
    pass_trace.read(12);
    pass_trace.compute(8);
    pass_trace.write(12);
    for bit in 0..passes {
        // Stable partition by the `bit`-th bit of the type id (LSD order).
        let mut zeros: Vec<usize> = Vec::with_capacity(order.len());
        let mut ones: Vec<usize> = Vec::with_capacity(order.len());
        for &idx in &order {
            if (types[idx] >> bit) & 1 == 0 {
                zeros.push(idx);
            } else {
                ones.push(idx);
            }
        }
        zeros.extend(ones);
        order = zeros;
        let report = gpu.launch_uniform(
            format!("group_by_type_pass_{bit}"),
            types.len(),
            &pass_trace,
        );
        time += report.time;
    }
    GroupingOutcome {
        order,
        time,
        passes,
    }
}

/// The maximum number of distinct types that can share a warp after `passes`
/// single-bit passes over `num_types` types (used by tests and by the
/// calibration in the figures harness).
pub fn max_types_per_group(num_types: usize, passes: u32) -> usize {
    let needed = passes_for_full_grouping(num_types);
    let remaining_bits = needed.saturating_sub(passes);
    (1usize << remaining_bits).min(num_types.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grouping_sorts_by_type() {
        let mut gpu = Gpu::c1060();
        let types: Vec<TxnTypeId> = (0..64).map(|i| (i % 8) as TxnTypeId).collect();
        let g = group_by_type(&mut gpu, &types, 8, 8);
        assert_eq!(g.passes, 3);
        let grouped: Vec<TxnTypeId> = g.order.iter().map(|&i| types[i]).collect();
        let mut sorted = grouped.clone();
        sorted.sort_unstable();
        assert_eq!(grouped, sorted, "full grouping must fully sort the types");
        assert!(g.time.as_secs() > 0.0);
    }

    #[test]
    fn zero_passes_is_identity_and_free() {
        let mut gpu = Gpu::c1060();
        let types: Vec<TxnTypeId> = vec![3, 1, 2, 0];
        let g = group_by_type(&mut gpu, &types, 4, 0);
        assert_eq!(g.order, vec![0, 1, 2, 3]);
        assert_eq!(g.passes, 0);
        assert!(g.time.is_zero());
    }

    #[test]
    fn grouping_is_stable_within_types() {
        let mut gpu = Gpu::c1060();
        // Two types, interleaved; indices within a type must stay ordered.
        let types: Vec<TxnTypeId> = vec![1, 0, 1, 0, 1, 0];
        let g = group_by_type(&mut gpu, &types, 2, 4);
        assert_eq!(g.order, vec![1, 3, 5, 0, 2, 4]);
    }

    #[test]
    fn partial_grouping_reduces_types_per_group() {
        assert_eq!(max_types_per_group(16, 0), 16);
        assert_eq!(max_types_per_group(16, 1), 8);
        assert_eq!(max_types_per_group(16, 2), 4);
        assert_eq!(max_types_per_group(16, 4), 1);
        assert_eq!(max_types_per_group(16, 9), 1);
        assert_eq!(max_types_per_group(1, 0), 1);
    }

    #[test]
    fn more_passes_cost_more_time() {
        let mut gpu = Gpu::c1060();
        let types: Vec<TxnTypeId> = (0..10_000).map(|i| (i % 16) as TxnTypeId).collect();
        let one = group_by_type(&mut gpu, &types, 16, 1);
        let four = group_by_type(&mut gpu, &types, 16, 4);
        assert!(four.time > one.time);
        assert_eq!(one.passes, 1);
        assert_eq!(four.passes, 4);
    }

    #[test]
    fn passes_for_full_grouping_is_log2_ceiling() {
        assert_eq!(passes_for_full_grouping(1), 0);
        assert_eq!(passes_for_full_grouping(2), 1);
        assert_eq!(passes_for_full_grouping(7), 3);
        assert_eq!(passes_for_full_grouping(8), 3);
        assert_eq!(passes_for_full_grouping(9), 4);
    }
}
