//! The bulk profiler.
//!
//! Before choosing an execution strategy, GPUTx analyzes the characteristics
//! of the input transactions (§5). The profiler computes the three structural
//! indicators of the T-dependency graph identified in Appendix D:
//!
//! * `d` — the depth of the graph (critical path length of the bulk),
//! * `w0` — the number of transactions in the 0-set (available parallelism),
//! * `c` — the number of cross-partition transactions.
//!
//! For the streaming engine this module additionally condenses the per-stage
//! wall-clock timings of a pipelined run into a [`StageOccupancy`] — the
//! utilization profile that tells an operator which stage bounds throughput.

use gputx_exec::PipelineStats;
use gputx_storage::Database;
use gputx_txn::kset::rank_ksets;
use gputx_txn::{ProcedureRegistry, TxnSignature};
use serde::{Deserialize, Serialize};

/// Structural profile of one bulk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BulkProfile {
    /// Number of transactions in the bulk.
    pub size: usize,
    /// Depth `d`: maximum rank over all transactions.
    pub depth: u32,
    /// `w0`: number of transactions without preceding conflicting transactions.
    pub zero_set_size: usize,
    /// `c`: number of cross-partition transactions (no single partition key).
    pub cross_partition: usize,
    /// Number of distinct partition keys among the single-partition
    /// transactions — the parallelism PART can extract (the adaptive
    /// selector divides this by the configured partition size to estimate
    /// group count).
    pub distinct_partitions: usize,
    /// Number of distinct transaction types present in the bulk.
    pub distinct_types: usize,
    /// Per-type transaction counts, indexed by type id.
    pub type_histogram: Vec<usize>,
}

/// Profile a bulk of transaction signatures.
pub fn profile_bulk(
    registry: &ProcedureRegistry,
    db: &Database,
    bulk: &[TxnSignature],
) -> BulkProfile {
    let ops: Vec<_> = bulk
        .iter()
        .map(|sig| (sig.id, registry.read_write_set(sig, db)))
        .collect();
    let ranks = rank_ksets(&ops);
    let zero_set_size = ranks.zero_set().len();
    let depth = ranks.max_depth();

    let mut cross_partition = 0usize;
    let mut partition_keys = std::collections::BTreeSet::new();
    for sig in bulk {
        match registry.partition_key(sig) {
            Some(key) => {
                partition_keys.insert(key);
            }
            None => cross_partition += 1,
        }
    }
    let distinct_partitions = partition_keys.len();

    let mut type_histogram = vec![0usize; registry.num_types()];
    for sig in bulk {
        if (sig.ty as usize) < type_histogram.len() {
            type_histogram[sig.ty as usize] += 1;
        }
    }
    let distinct_types = type_histogram.iter().filter(|&&c| c > 0).count();

    BulkProfile {
        size: bulk.len(),
        depth,
        zero_set_size,
        cross_partition,
        distinct_partitions,
        distinct_types,
        type_histogram,
    }
}

/// Per-stage utilization of a pipelined run: the fraction of wall-clock time
/// each stage spent busy. The stage closest to 1.0 is the bottleneck; a low
/// execution occupancy with a high grouping occupancy says the bulk-formation
/// overlap (not the kernel work) bounds throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageOccupancy {
    /// Admission stage (bulk formation + backpressure hand-off).
    pub admission: f64,
    /// Grouping stage (K-SET wave / partition-group construction).
    pub grouping: f64,
    /// Execution stage (functional bulk execution).
    pub execution: f64,
    /// Commit stage (ticket resolution).
    pub commit: f64,
}

impl StageOccupancy {
    /// Name of the busiest stage — the pipeline's throughput bottleneck.
    pub fn bottleneck(&self) -> &'static str {
        let stages = [
            ("admission", self.admission),
            ("grouping", self.grouping),
            ("execution", self.execution),
            ("commit", self.commit),
        ];
        stages
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("occupancies are finite"))
            .expect("four stages")
            .0
    }
}

/// Condense the per-stage timings of a pipelined run into its utilization
/// profile.
pub fn profile_pipeline(stats: &PipelineStats) -> StageOccupancy {
    let [admission, grouping, execution, commit] = stats.occupancy();
    StageOccupancy {
        admission,
        grouping,
        execution,
        commit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Value};
    use gputx_txn::{BasicOp, ProcedureDef};

    fn setup() -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Double),
            ],
            vec![0],
        ));
        for i in 0..100i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Double(0.0)]);
        }
        let mut reg = ProcedureRegistry::new();
        // Type 0: single-partition update of row `params[0]`.
        reg.register(ProcedureDef::new(
            "update_one",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_double();
                ctx.write(t, row, 1, Value::Double(v + 1.0));
            },
        ));
        // Type 1: cross-partition update of two rows.
        reg.register(ProcedureDef::new(
            "update_two",
            move |p, _| {
                vec![
                    BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1)),
                    BasicOp::write(DataItemId::new(t, p[1].as_int() as u64, 1)),
                ]
            },
            |_| None,
            move |ctx| {
                for i in 0..2 {
                    let row = ctx.param_int(i) as u64;
                    let v = ctx.read(t, row, 1).as_double();
                    ctx.write(t, row, 1, Value::Double(v + 1.0));
                }
            },
        ));
        (db, reg)
    }

    #[test]
    fn profile_independent_bulk() {
        let (db, reg) = setup();
        let bulk: Vec<TxnSignature> = (0..50)
            .map(|i| TxnSignature::new(i, 0, vec![Value::Int(i as i64)]))
            .collect();
        let p = profile_bulk(&reg, &db, &bulk);
        assert_eq!(p.size, 50);
        assert_eq!(p.depth, 0);
        assert_eq!(p.zero_set_size, 50);
        assert_eq!(p.cross_partition, 0);
        assert_eq!(p.distinct_partitions, 50);
        assert_eq!(p.distinct_types, 1);
        assert_eq!(p.type_histogram, vec![50, 0]);
    }

    #[test]
    fn profile_conflicting_and_cross_partition_bulk() {
        let (db, reg) = setup();
        // Ten updates of the same row: a chain of depth 9; plus one
        // cross-partition transaction.
        let mut bulk: Vec<TxnSignature> = (0..10)
            .map(|i| TxnSignature::new(i, 0, vec![Value::Int(7)]))
            .collect();
        bulk.push(TxnSignature::new(10, 1, vec![Value::Int(1), Value::Int(2)]));
        let p = profile_bulk(&reg, &db, &bulk);
        assert_eq!(p.size, 11);
        assert_eq!(p.depth, 9);
        assert_eq!(
            p.zero_set_size, 2,
            "first writer of row 7 plus the cross-partition txn"
        );
        assert_eq!(p.cross_partition, 1);
        assert_eq!(p.distinct_partitions, 1, "every chained update hits row 7");
        assert_eq!(p.distinct_types, 2);
    }

    #[test]
    fn empty_bulk_profile() {
        let (db, reg) = setup();
        let p = profile_bulk(&reg, &db, &[]);
        assert_eq!(p.size, 0);
        assert_eq!(p.depth, 0);
        assert_eq!(p.zero_set_size, 0);
    }

    #[test]
    fn pipeline_profile_reports_occupancy_and_bottleneck() {
        let stats = PipelineStats::default();
        let idle = profile_pipeline(&stats);
        assert_eq!(idle.admission, 0.0);
        let occ = StageOccupancy {
            admission: 0.1,
            grouping: 0.4,
            execution: 0.9,
            commit: 0.05,
        };
        assert_eq!(occ.bottleneck(), "execution");
    }
}
