//! Engine-level errors.

use gputx_exec::ExecError;

/// Typed failure of a bulk execution at the engine level.
///
/// The fallible entry point is [`try_execute_bulk`](crate::try_execute_bulk);
/// the original [`execute_bulk`](crate::execute_bulk) keeps its infallible
/// signature and panics on these (they only arise from panicking stored
/// procedures, which would have unwound through the old API anyway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The host executor failed (a panicking procedure surfaced by the
    /// parallel executor). See [`ExecError::WorkerPanicked`] for what state a
    /// failed bulk leaves behind (none on the worker path; partial in-place
    /// effects on the inline serial fallback).
    Exec(ExecError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Exec(e) => write!(f, "bulk execution failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Exec(e) => Some(e),
        }
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_cause() {
        let err = EngineError::from(ExecError::WorkerPanicked {
            shard: 3,
            message: "boom".into(),
        });
        let text = err.to_string();
        assert!(text.contains("shard 3"));
        assert!(text.contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
