//! The three bulk execution strategies (§5) and their shared machinery.
//!
//! All strategies execute the transaction logic *functionally* against the
//! in-memory database in an order that the concurrency-control argument proves
//! equivalent to the timestamp order (Definition 1), while recording one
//! [`ThreadTrace`](gputx_sim::ThreadTrace) per logical GPU thread. The traces are then replayed
//! through the simulated device's cost model to obtain kernel timings.

pub mod kset;
pub mod part;
pub mod tpl;

use crate::bulk::{Bulk, BulkReport};
use crate::config::EngineConfig;
use crate::error::EngineError;
use gputx_exec::ExecPolicy;
use gputx_sim::{Gpu, SimDuration};
use gputx_storage::Database;
use gputx_txn::{ProcedureRegistry, TxnId, TxnOutcome};
use serde::{Deserialize, Serialize};

/// Which execution strategy ran a bulk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Two-phase locking with counter-based spin locks (§5.1).
    Tpl,
    /// Partition-based execution, one thread per partition (§5.2).
    Part,
    /// Iterative 0-set execution (§5.3).
    Kset,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::Tpl => write!(f, "TPL"),
            StrategyKind::Part => write!(f, "PART"),
            StrategyKind::Kset => write!(f, "K-SET"),
        }
    }
}

/// Everything a strategy needs to execute a bulk.
pub struct ExecContext<'a> {
    /// The simulated GPU.
    pub gpu: &'a mut Gpu,
    /// The database (device resident; mutated by the execution).
    pub db: &'a mut Database,
    /// The registered transaction types.
    pub registry: &'a ProcedureRegistry,
    /// Engine configuration.
    pub config: &'a EngineConfig,
}

/// Outcome of executing one bulk with one strategy.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The strategy that was requested.
    pub strategy: StrategyKind,
    /// Number of transactions executed.
    pub transactions: usize,
    /// Bulk generation time (rank computation, sorting, grouping).
    pub generation: SimDuration,
    /// Kernel execution time.
    pub execution: SimDuration,
    /// Host↔device transfer time for inputs and results.
    pub transfer: SimDuration,
    /// Committed transaction count.
    pub committed: usize,
    /// Aborted transaction count.
    pub aborted: usize,
    /// Per-transaction outcomes.
    pub outcomes: Vec<(TxnId, TxnOutcome)>,
    /// True when PART detected cross-partition transactions and fell back to
    /// TPL for the whole bulk (§5.2).
    pub fell_back_to_tpl: bool,
}

impl StrategyOutcome {
    pub(crate) fn empty(strategy: StrategyKind) -> Self {
        StrategyOutcome {
            strategy,
            transactions: 0,
            generation: SimDuration::ZERO,
            execution: SimDuration::ZERO,
            transfer: SimDuration::ZERO,
            committed: 0,
            aborted: 0,
            outcomes: Vec::new(),
            fell_back_to_tpl: false,
        }
    }

    /// Total simulated time.
    pub fn total(&self) -> SimDuration {
        self.generation + self.execution + self.transfer
    }

    /// Convert into the engine-level bulk report.
    pub fn into_report(self) -> BulkReport {
        BulkReport {
            strategy: self.strategy,
            transactions: self.transactions,
            generation: self.generation,
            execution: self.execution,
            transfer: self.transfer,
            committed: self.committed,
            aborted: self.aborted,
            outcomes: self.outcomes,
        }
    }
}

/// The trace-accounting policy of the GPU strategies: undo logging as
/// configured (Appendix D), abort-rollback replay traffic always.
pub(crate) fn exec_policy(config: &EngineConfig) -> ExecPolicy {
    ExecPolicy::gpu(config.undo_logging)
}

/// Account for the PCIe transfers of one bulk: parameters in, results out
/// (Appendix F.2 / Figure 16: "input" and "output" components).
pub(crate) fn account_transfers(gpu: &mut Gpu, bulk: &Bulk) -> SimDuration {
    let input = gpu.transfer_to_device("bulk parameters", bulk.wire_bytes());
    // Result record: transaction id + status + a result value.
    let output = gpu.transfer_to_host("bulk results", 16 * bulk.len() as u64);
    input + output
}

/// Tally commit/abort counts from per-transaction outcomes.
pub(crate) fn tally(outcomes: &[(TxnId, TxnOutcome)]) -> (usize, usize) {
    let committed = outcomes.iter().filter(|(_, o)| o.is_committed()).count();
    (committed, outcomes.len() - committed)
}

/// Execute a bulk with the given strategy, applying insert buffers afterwards
/// (the batched update of §3.2). Fallible variant: a panicking procedure
/// under the parallel executor surfaces as [`EngineError`] instead of
/// unwinding. On the executor's worker path the failing wave/group-set makes
/// no state change (no shard delta is merged); earlier K-SET waves of the
/// same bulk, and the inline serial fallback, execute in place, so their
/// effects remain (insert buffers are not applied on failure either way).
///
/// The functional work runs on the host executor selected by
/// `config.executor`: the serial reference loop, or the sharded
/// multi-threaded executor of `gputx-exec`, which runs K-SET waves and PART
/// partition groups on worker threads with bit-identical results. TPL
/// executes its host loop serially regardless (its counter-based locks
/// enforce a total timestamp order, leaving no host-side parallelism to
/// exploit).
pub fn try_execute_bulk(
    ctx: &mut ExecContext<'_>,
    strategy: StrategyKind,
    bulk: &Bulk,
) -> Result<StrategyOutcome, EngineError> {
    let executor = ctx.config.executor.build();
    // The gather step: resolve every planned procedure's index keys to dense
    // row ids once, against the database the bulk is about to run on (index
    // state is frozen for the duration of a bulk — buffered inserts only
    // reach the indexes in `apply_insert_buffers` below — so the plan is
    // exact). Execution then performs zero index hash lookups for planned
    // transactions. The streaming pipeline builds this plan on its grouping
    // stage instead, overlapped with the previous bulk's execution.
    let access = gputx_txn::AccessPlan::build(ctx.registry, ctx.db, &bulk.txns);
    let access = (!access.is_empty()).then_some(access);
    try_execute_bulk_planned(ctx, strategy, bulk, executor.as_ref(), access.as_ref())
}

/// [`try_execute_bulk`] with a caller-supplied executor and pre-built access
/// plan — the entry point for engines that keep one executor (and its pooled
/// allocations) alive across bulks and build plans off-thread.
pub fn try_execute_bulk_planned(
    ctx: &mut ExecContext<'_>,
    strategy: StrategyKind,
    bulk: &Bulk,
    executor: &dyn gputx_exec::Executor,
    access: Option<&gputx_txn::AccessPlan>,
) -> Result<StrategyOutcome, EngineError> {
    let mut outcome = match strategy {
        StrategyKind::Tpl => tpl::run(ctx, bulk, access),
        StrategyKind::Part => part::run(ctx, bulk, executor, access)?,
        StrategyKind::Kset => kset::run(ctx, bulk, executor, access)?,
    };
    ctx.db.apply_insert_buffers();
    outcome.transfer += account_transfers(ctx.gpu, bulk);
    Ok(outcome)
}

/// Infallible [`try_execute_bulk`]: panics if the executor reports a worker
/// panic (the pre-existing behaviour of this entry point). Every non-failing
/// path is byte-identical to the fallible variant.
pub fn execute_bulk(
    ctx: &mut ExecContext<'_>,
    strategy: StrategyKind,
    bulk: &Bulk,
) -> StrategyOutcome {
    try_execute_bulk(ctx, strategy, bulk).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_kind_display() {
        assert_eq!(StrategyKind::Tpl.to_string(), "TPL");
        assert_eq!(StrategyKind::Part.to_string(), "PART");
        assert_eq!(StrategyKind::Kset.to_string(), "K-SET");
    }

    #[test]
    fn outcome_total_and_report_round_trip() {
        let mut o = StrategyOutcome::empty(StrategyKind::Kset);
        o.transactions = 10;
        o.generation = SimDuration::from_millis(1.0);
        o.execution = SimDuration::from_millis(2.0);
        o.transfer = SimDuration::from_millis(0.5);
        o.committed = 10;
        assert!((o.total().as_millis() - 3.5).abs() < 1e-9);
        let report = o.into_report();
        assert_eq!(report.transactions, 10);
        assert_eq!(report.committed, 10);
        assert!((report.total().as_millis() - 3.5).abs() < 1e-9);
    }
}
