//! PART: partition-based execution (§5.2).
//!
//! The database is partitioned on the workload's partitioning key; one GPU
//! thread executes all transactions of one partition sequentially, so no locks
//! are needed within a partition (the H-Store execution model transplanted to
//! the GPU). In contrast with the CPU engines' push model, the GPU execution
//! is a *pull* model: a map kernel computes each transaction's partition id,
//! the transactions are radix-sorted by partition id, and each thread binary
//! searches the boundaries of its partition before executing it.
//!
//! PART only works for single-partition transactions; if the bulk contains
//! cross-partition transactions the whole bulk falls back to TPL, which the
//! paper notes "can severely degrade the performance".

use super::{exec_policy, tally, tpl, ExecContext, StrategyKind, StrategyOutcome};
use crate::bulk::Bulk;
use gputx_exec::{ExecError, Executor};
use gputx_sim::primitives::{map_cost, radix_sort_pairs};
use gputx_sim::ThreadTrace;
use gputx_txn::TxnSignature;
use std::collections::BTreeMap;

/// Execute a bulk with partition-based execution. Partition groups are
/// pairwise disjoint, so the executor may run them on worker threads (each
/// group serially in timestamp order, mirroring the one-GPU-thread-per-
/// partition model).
pub(crate) fn run(
    ctx: &mut ExecContext<'_>,
    bulk: &Bulk,
    executor: &dyn Executor,
    access: Option<&gputx_txn::AccessPlan>,
) -> Result<StrategyOutcome, ExecError> {
    let mut outcome = StrategyOutcome::empty(StrategyKind::Part);
    if bulk.is_empty() {
        return Ok(outcome);
    }

    // Step 1 (map): compute the partition id of every transaction.
    let keys: Vec<Option<u64>> = bulk
        .txns
        .iter()
        .map(|sig| ctx.registry.partition_key(sig))
        .collect();
    if keys.iter().any(|k| k.is_none()) {
        // Cross-partition transactions present: fall back to TPL (§5.2).
        let mut fallback = tpl::run(ctx, bulk, access);
        fallback.strategy = StrategyKind::Part;
        fallback.fell_back_to_tpl = true;
        return Ok(fallback);
    }
    outcome.transactions = bulk.len();
    let map_out = map_cost(ctx.gpu, "part_partition_ids", bulk.len(), 8, 16, 8);
    outcome.generation += map_out.time;

    let partition_of = |key: u64| key / ctx.config.partition_size;

    // Step 2 (sort): radix sort the (partition id, transaction index) pairs.
    let mut sort_keys: Vec<u64> = keys
        .iter()
        .map(|k| partition_of(k.expect("checked")))
        .collect();
    let mut payload: Vec<u64> = (0..bulk.len() as u64).collect();
    let max_partition = sort_keys.iter().copied().max().unwrap_or(0);
    let significant_bits = 64 - max_partition.leading_zeros().min(63);
    let sort_out = radix_sort_pairs(
        ctx.gpu,
        &mut sort_keys,
        &mut payload,
        significant_bits.max(1),
    );
    outcome.generation += sort_out.time;

    // Step 3: one thread per partition finds its boundaries with binary
    // searches and executes its transactions sequentially in timestamp order.
    let mut partitions: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (pos, &txn_idx) in payload.iter().enumerate() {
        partitions
            .entry(sort_keys[pos])
            .or_default()
            .push(txn_idx as usize);
    }

    let groups: Vec<Vec<&TxnSignature>> = partitions
        .into_values()
        .map(|mut indices| {
            indices.sort_by_key(|&i| bulk.txns[i].id);
            indices.into_iter().map(|i| &bulk.txns[i]).collect()
        })
        .collect();
    let policy = exec_policy(ctx.config);
    let executed_groups = executor.run_groups(ctx.db, ctx.registry, &policy, &groups, access)?;

    let search_steps = (bulk.len().max(2) as f64).log2().ceil() as u64;
    let mut thread_traces: Vec<ThreadTrace> = Vec::with_capacity(groups.len());
    for executed in executed_groups {
        // All PART threads run the same partition loop, so they share one SPMD
        // path; the per-thread cost differences come from partition sizes.
        let mut thread = ThreadTrace::new(0);
        // Two binary searches over the sorted array for the start/end bounds.
        thread.compute(4 * 2 * search_steps);
        for _ in 0..2 * search_steps {
            thread.read(8);
        }
        for txn in executed {
            thread.absorb(&txn.trace);
            outcome.outcomes.push((txn.id, txn.outcome));
        }
        thread_traces.push(thread);
    }
    let report = ctx.gpu.launch("part_execute", &thread_traces);
    outcome.execution += report.time;

    outcome.outcomes.sort_by_key(|(id, _)| *id);
    let (committed, aborted) = tally(&outcome.outcomes);
    outcome.committed = committed;
    outcome.aborted = aborted;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::strategy::execute_bulk;
    use gputx_sim::Gpu;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Database, Value};
    use gputx_txn::{BasicOp, ProcedureDef, ProcedureRegistry, TxnSignature};

    /// A bank with one row per branch; type 0 deposits into one branch
    /// (single-partition), type 1 transfers between two branches
    /// (cross-partition).
    fn bank(branches: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "branches",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("balance", DataType::Double),
            ],
            vec![0],
        ));
        for i in 0..branches {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Double(0.0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "deposit",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_double();
                ctx.write(t, row, 1, Value::Double(v + ctx.param_double(1)));
            },
        ));
        reg.register(ProcedureDef::new(
            "transfer",
            move |p, _| {
                vec![
                    BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1)),
                    BasicOp::write(DataItemId::new(t, p[1].as_int() as u64, 1)),
                ]
            },
            |_| None,
            move |ctx| {
                let from = ctx.param_int(0) as u64;
                let to = ctx.param_int(1) as u64;
                let amount = ctx.param_double(2);
                let f = ctx.read(t, from, 1).as_double();
                let g = ctx.read(t, to, 1).as_double();
                ctx.write(t, from, 1, Value::Double(f - amount));
                ctx.write(t, to, 1, Value::Double(g + amount));
            },
        ));
        (db, reg)
    }

    #[test]
    fn part_executes_single_partition_bulk() {
        let (mut db, reg) = bank(32);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default().with_partition_size(1);
        // 10 deposits of 1.0 into each of the 32 branches.
        let bulk = Bulk::new(
            (0..320)
                .map(|i| {
                    TxnSignature::new(i, 0, vec![Value::Int((i % 32) as i64), Value::Double(1.0)])
                })
                .collect(),
        );
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, StrategyKind::Part, &bulk);
        assert_eq!(out.committed, 320);
        assert!(!out.fell_back_to_tpl);
        for b in 0..32 {
            assert_eq!(db.table_by_name("branches").get(b, 1), Value::Double(10.0));
        }
        assert!(out.generation.as_secs() > 0.0);
        assert!(out.execution.as_secs() > 0.0);
    }

    #[test]
    fn cross_partition_bulk_falls_back_to_tpl() {
        let (mut db, reg) = bank(8);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let bulk = Bulk::new(vec![
            TxnSignature::new(0, 0, vec![Value::Int(0), Value::Double(5.0)]),
            TxnSignature::new(1, 1, vec![Value::Int(0), Value::Int(3), Value::Double(2.0)]),
        ]);
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, StrategyKind::Part, &bulk);
        assert!(out.fell_back_to_tpl);
        assert_eq!(out.strategy, StrategyKind::Part);
        assert_eq!(out.committed, 2);
        assert_eq!(db.table_by_name("branches").get(0, 1), Value::Double(3.0));
        assert_eq!(db.table_by_name("branches").get(3, 1), Value::Double(2.0));
    }

    #[test]
    fn partition_size_changes_thread_count_and_cost() {
        // With fewer, larger partitions the critical path grows (Figure 13's
        // concave throughput curve beyond the optimum).
        let (db0, reg) = bank(256);
        let bulk = Bulk::new(
            (0..2048)
                .map(|i| {
                    TxnSignature::new(i, 0, vec![Value::Int((i % 256) as i64), Value::Double(1.0)])
                })
                .collect(),
        );
        let mut times = Vec::new();
        for partition_size in [1u64, 256] {
            let mut db = db0.clone();
            let mut gpu = Gpu::c1060();
            let config = EngineConfig::default().with_partition_size(partition_size);
            let mut ctx = ExecContext {
                gpu: &mut gpu,
                db: &mut db,
                registry: &reg,
                config: &config,
            };
            let out = execute_bulk(&mut ctx, StrategyKind::Part, &bulk);
            assert_eq!(out.committed, 2048);
            times.push(out.execution);
        }
        assert!(
            times[1] > times[0],
            "a single giant partition ({:?}) must be slower than one branch per partition ({:?})",
            times[1],
            times[0]
        );
    }

    #[test]
    fn empty_bulk_is_a_noop() {
        let (mut db, reg) = bank(2);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = super::run(
            &mut ctx,
            &Bulk::default(),
            &gputx_exec::SerialExecutor,
            None,
        )
        .unwrap();
        assert_eq!(out.transactions, 0);
    }
}
