//! TPL: two-phase locking execution (§5.1).
//!
//! Locks are spin locks built on the GPU's atomic operations (Appendix C).
//! The *counter-based* lock extends the basic 0/1 spin lock with a counter:
//! every transaction is assigned a key value per lock, equal to its rank in
//! the per-item access sequence (computed by the k-set calculation, §4.2), and
//! a thread only acquires the lock when the counter reaches its key. This
//! makes the execution order deterministic (equal to the timestamp order) and
//! deadlock-free, because the key assignment follows the acyclic T-dependency
//! graph.
//!
//! Under the relaxed (Appendix G) configuration the basic 0/1 lock is used
//! instead: no rank computation is needed during bulk generation and a thread
//! only waits for mutual exclusion, not for a specific order.

use super::{exec_policy, tally, ExecContext, StrategyKind, StrategyOutcome};
use crate::bulk::Bulk;
use crate::grouping::group_by_type;
use gputx_exec::run_txn_planned;
use gputx_sim::ThreadTrace;
use gputx_txn::kset::gpu_rank_ksets;
use gputx_txn::{TxnScratch, TxnTypeId};
use std::collections::HashMap;

/// Execute a bulk with two-phase locking. The host loop is serial by design:
/// the counter-based locks enforce the total timestamp order, so there are no
/// conflict-free sets for the multi-threaded executor to exploit. The access
/// plan still applies — planned transactions skip their index probes.
pub(crate) fn run(
    ctx: &mut ExecContext<'_>,
    bulk: &Bulk,
    access: Option<&gputx_txn::AccessPlan>,
) -> StrategyOutcome {
    let mut outcome = StrategyOutcome::empty(StrategyKind::Tpl);
    if bulk.is_empty() {
        return outcome;
    }
    outcome.transactions = bulk.len();

    // ---- Bulk generation -------------------------------------------------
    // Deterministic TPL needs the per-item ranks as lock key values; the
    // relaxed variant skips this sort-based computation entirely.
    let ranks = if ctx.config.relax_timestamps {
        None
    } else {
        let ops: Vec<_> = bulk
            .txns
            .iter()
            .map(|sig| (sig.id, ctx.registry.read_write_set(sig, ctx.db)))
            .collect();
        let r = gpu_rank_ksets(ctx.gpu, &ops);
        outcome.generation += r.gpu_time;
        Some(r)
    };

    // Group by transaction type to reduce branch divergence.
    let types: Vec<TxnTypeId> = bulk.txns.iter().map(|t| t.ty).collect();
    let grouping = group_by_type(
        ctx.gpu,
        &types,
        ctx.registry.num_types(),
        ctx.config.grouping_passes,
    );
    outcome.generation += grouping.time;

    // ---- Execution --------------------------------------------------------
    // Functional execution happens in timestamp order (which is exactly the
    // order the counter-based locks enforce); each transaction's trace is
    // augmented with its lock acquisitions and spin rounds. Relaxed TPL only
    // enforces mutual exclusion, so the expected wait is roughly half the
    // position in the per-item contention queue.
    let policy = exec_policy(ctx.config);
    let mut traces: Vec<ThreadTrace> = Vec::with_capacity(bulk.len());
    let mut contention: HashMap<u64, u64> = HashMap::new();
    let mut scratch = TxnScratch::default();
    let mut merged: Vec<gputx_txn::BasicOp> = Vec::new();
    for sig in &bulk.txns {
        let items = ctx.registry.read_write_set(sig, ctx.db);
        let executed = run_txn_planned(ctx.db, ctx.registry, &policy, sig, access, &mut scratch);
        let (mut trace, txn_outcome) = (executed.trace, executed.outcome);
        gputx_txn::op::dedup_strongest_into(&items, &mut merged);
        for op in &merged {
            let rounds = match &ranks {
                Some(r) => *r.item_ranks.get(&(sig.id, op.item.as_u64())).unwrap_or(&0) as u64,
                None => {
                    // Basic 0/1 spin lock: wait behind however many conflicting
                    // threads are already queued on this item, on average half
                    // of them spin ahead of us.
                    let seen = contention.entry(op.item.as_u64()).or_insert(0);
                    let rounds = *seen / 2;
                    *seen += 1;
                    rounds
                }
            };
            // Even an uncontended acquisition pays the spin-loop body at least
            // once (volatile read + __threadfence) plus the release fence,
            // which is the "relatively high runtime overhead" of TPL the paper
            // notes in Appendix D.
            trace.lock_wait(rounds + 2);
            // Lock release: one atomic add (counter lock) or store + fence.
            trace.atomic(0);
        }
        traces.push(trace);
        outcome.outcomes.push((sig.id, txn_outcome));
    }

    // Apply the grouping permutation to the thread order so warps see as few
    // distinct types as possible.
    let grouped: Vec<ThreadTrace> = grouping.order.iter().map(|&i| traces[i].clone()).collect();
    let report = ctx.gpu.launch("tpl_execute", &grouped);
    outcome.execution += report.time;

    let (committed, aborted) = tally(&outcome.outcomes);
    outcome.committed = committed;
    outcome.aborted = aborted;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::strategy::execute_bulk;
    use gputx_sim::Gpu;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Database, Value};
    use gputx_txn::{BasicOp, ProcedureDef, ProcedureRegistry, TxnSignature};

    fn counter_db(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("value", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t).insert(vec![Value::Int(i), Value::Int(0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "increment",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_int();
                ctx.write(t, row, 1, Value::Int(v + 1));
            },
        ));
        (db, reg)
    }

    fn bulk_incrementing(row: i64, n: u64) -> Bulk {
        Bulk::new(
            (0..n)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int(row)]))
                .collect(),
        )
    }

    #[test]
    fn tpl_executes_conflicting_bulk_correctly() {
        let (mut db, reg) = counter_db(4);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let bulk = bulk_incrementing(2, 100);
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, StrategyKind::Tpl, &bulk);
        assert_eq!(out.committed, 100);
        assert_eq!(out.aborted, 0);
        assert_eq!(db.table_by_name("counters").get(2, 1), Value::Int(100));
        assert!(
            out.generation.as_secs() > 0.0,
            "rank computation takes time"
        );
        assert!(out.execution.as_secs() > 0.0);
        assert!(out.transfer.as_secs() > 0.0);
    }

    #[test]
    fn contended_bulk_is_slower_than_spread_bulk() {
        // Lock contention (deep T-dependency graph) must cost execution time.
        let config = EngineConfig::default();
        let (mut db1, reg1) = counter_db(1024);
        let mut gpu1 = Gpu::c1060();
        let contended = bulk_incrementing(0, 1024);
        let mut ctx1 = ExecContext {
            gpu: &mut gpu1,
            db: &mut db1,
            registry: &reg1,
            config: &config,
        };
        let slow = execute_bulk(&mut ctx1, StrategyKind::Tpl, &contended);

        let (mut db2, reg2) = counter_db(1024);
        let mut gpu2 = Gpu::c1060();
        let spread = Bulk::new(
            (0..1024)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int((i % 1024) as i64)]))
                .collect(),
        );
        let mut ctx2 = ExecContext {
            gpu: &mut gpu2,
            db: &mut db2,
            registry: &reg2,
            config: &config,
        };
        let fast = execute_bulk(&mut ctx2, StrategyKind::Tpl, &spread);
        assert!(
            slow.execution > fast.execution,
            "contended {:?} should exceed spread {:?}",
            slow.execution,
            fast.execution
        );
    }

    #[test]
    fn relaxed_tpl_skips_rank_generation() {
        let (mut db, reg) = counter_db(64);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default().with_relaxed_timestamps(true);
        let bulk = bulk_incrementing(1, 64);
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, StrategyKind::Tpl, &bulk);
        assert_eq!(out.committed, 64);
        // Only grouping time remains in generation; with the default passes it
        // is far below the rank-computation cost of the strict variant.
        let (mut db2, reg2) = counter_db(64);
        let mut gpu2 = Gpu::c1060();
        let strict_cfg = EngineConfig::default();
        let mut ctx2 = ExecContext {
            gpu: &mut gpu2,
            db: &mut db2,
            registry: &reg2,
            config: &strict_cfg,
        };
        let strict = execute_bulk(&mut ctx2, StrategyKind::Tpl, &bulk_incrementing(1, 64));
        assert!(out.generation < strict.generation);
        // Both end states agree.
        assert_eq!(db.table_by_name("counters").get(1, 1), Value::Int(64));
        assert_eq!(db2.table_by_name("counters").get(1, 1), Value::Int(64));
    }

    #[test]
    fn empty_bulk_is_a_noop() {
        let (mut db, reg) = counter_db(4);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = tpl::run(&mut ctx, &Bulk::default(), None);
        assert_eq!(out.transactions, 0);
        assert!(out.total().is_zero());
    }

    use crate::strategy::tpl;
}
