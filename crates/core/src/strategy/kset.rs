//! K-SET: k-set based execution (§5.3).
//!
//! The strategy repeatedly extracts the 0-set — the transactions without
//! preceding conflicting transactions — and executes it as one fully parallel
//! kernel: 0-set transactions are pairwise conflict-free (Property 1), so no
//! locks and no partition serialization are needed. After a wave executes, the
//! executed transactions are removed and the former 1-set becomes the new
//! 0-set. The 0-set is maintained incrementally so later waves do not pay the
//! full sort-based k-set computation again.

use super::{exec_policy, tally, ExecContext, StrategyKind, StrategyOutcome};
use crate::bulk::Bulk;
use crate::grouping::group_by_type;
use gputx_exec::{ExecError, Executor};
use gputx_sim::primitives::map_cost;
use gputx_sim::ThreadTrace;
use gputx_txn::kset::{gpu_rank_ksets, IncrementalKSet};
use gputx_txn::{TxnSignature, TxnTypeId};
use std::collections::HashMap;

/// Execute a bulk with iterative 0-set execution. Each wave is a pairwise
/// conflict-free set (Property 1), so the executor may fan it out across
/// worker threads.
pub(crate) fn run(
    ctx: &mut ExecContext<'_>,
    bulk: &Bulk,
    executor: &dyn Executor,
    access: Option<&gputx_txn::AccessPlan>,
) -> Result<StrategyOutcome, ExecError> {
    let mut outcome = StrategyOutcome::empty(StrategyKind::Kset);
    if bulk.is_empty() {
        return Ok(outcome);
    }
    outcome.transactions = bulk.len();

    // ---- Bulk generation: initial k-set computation -----------------------
    let ops: Vec<_> = bulk
        .txns
        .iter()
        .map(|sig| (sig.id, ctx.registry.read_write_set(sig, ctx.db)))
        .collect();
    if !ctx.config.relax_timestamps {
        // The strict variant sorts the operation tuples to build the k-sets
        // (the "sort" cost of Figure 5). The relaxed variant (Appendix G)
        // replaces the sort with counter-based grouping, modeled below as a
        // cheap map + scan per wave.
        let ranks = gpu_rank_ksets(ctx.gpu, &ops);
        outcome.generation += ranks.gpu_time;
    }
    let mut pending = IncrementalKSet::new(&ops);
    let by_id: HashMap<u64, &TxnSignature> = bulk.txns.iter().map(|t| (t.id, t)).collect();

    // ---- Waves -------------------------------------------------------------
    while !pending.is_empty() {
        let wave = pending.zero_set();
        assert!(!wave.is_empty(), "a non-empty pool always has a 0-set");

        // Incremental extraction of the 0-set: one pass over the remaining
        // transactions (flag + compact).
        let extract = map_cost(
            ctx.gpu,
            "kset_extract_zero_set",
            pending.pending(),
            4,
            16,
            1,
        );
        outcome.generation += extract.time;

        // Group the wave's threads by transaction type for divergence.
        let types: Vec<TxnTypeId> = wave.iter().map(|id| by_id[id].ty).collect();
        let grouping = group_by_type(
            ctx.gpu,
            &types,
            ctx.registry.num_types(),
            ctx.config.grouping_passes,
        );
        outcome.generation += grouping.time;

        // Execute the wave: one (logical GPU) thread per transaction, no
        // locks. The wave is conflict-free, so the host executor may spread
        // it across real worker threads.
        let wave_sigs: Vec<&TxnSignature> = wave.iter().map(|id| by_id[id]).collect();
        let policy = exec_policy(ctx.config);
        let executed =
            executor.run_conflict_free(ctx.db, ctx.registry, &policy, &wave_sigs, access)?;
        let mut traces: Vec<ThreadTrace> = Vec::with_capacity(wave.len());
        for txn in executed {
            traces.push(txn.trace);
            outcome.outcomes.push((txn.id, txn.outcome));
        }
        let grouped: Vec<ThreadTrace> = grouping.order.iter().map(|&i| traces[i].clone()).collect();
        let report = ctx.gpu.launch("kset_execute_wave", &grouped);
        outcome.execution += report.time;

        pending.remove(&wave);
    }

    outcome.outcomes.sort_by_key(|(id, _)| *id);
    let (committed, aborted) = tally(&outcome.outcomes);
    outcome.committed = committed;
    outcome.aborted = aborted;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::strategy::execute_bulk;
    use gputx_sim::Gpu;
    use gputx_storage::schema::{ColumnDef, TableSchema};
    use gputx_storage::{DataItemId, DataType, Database, Value};
    use gputx_txn::{BasicOp, ProcedureDef, ProcedureRegistry};

    fn counter_db(rows: i64) -> (Database, ProcedureRegistry) {
        let mut db = Database::column_store();
        let t = db.create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("value", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..rows {
            db.table_mut(t).insert(vec![Value::Int(i), Value::Int(0)]);
        }
        let mut reg = ProcedureRegistry::new();
        reg.register(ProcedureDef::new(
            "increment",
            move |p, _| vec![BasicOp::write(DataItemId::new(t, p[0].as_int() as u64, 1))],
            |p| Some(p[0].as_int() as u64),
            move |ctx| {
                let row = ctx.param_int(0) as u64;
                let v = ctx.read(t, row, 1).as_int();
                ctx.write(t, row, 1, Value::Int(v + 1));
            },
        ));
        (db, reg)
    }

    #[test]
    fn kset_executes_conflict_free_bulk_in_one_wave() {
        let (mut db, reg) = counter_db(512);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let bulk = Bulk::new(
            (0..512)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int(i as i64)]))
                .collect(),
        );
        let kernels_before = gpu.stats().kernels;
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, StrategyKind::Kset, &bulk);
        assert_eq!(out.committed, 512);
        for i in 0..512 {
            assert_eq!(db.table_by_name("counters").get(i, 1), Value::Int(1));
        }
        // Exactly one execution wave was launched (plus generation kernels).
        let wave_kernels = gpu.stats().kernels - kernels_before;
        assert!(wave_kernels >= 1);
        assert!(out.execution.as_secs() > 0.0);
    }

    #[test]
    fn kset_serializes_conflicting_chain_over_waves() {
        let (mut db, reg) = counter_db(4);
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        // 20 increments of the same row: 20 waves of one transaction each.
        let bulk = Bulk::new(
            (0..20)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int(1)]))
                .collect(),
        );
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, StrategyKind::Kset, &bulk);
        assert_eq!(out.committed, 20);
        assert_eq!(db.table_by_name("counters").get(1, 1), Value::Int(20));
    }

    #[test]
    fn kset_matches_sequential_replay() {
        let (db0, reg) = counter_db(64);
        let bulk = Bulk::new(
            (0..500)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int((i % 7) as i64)]))
                .collect(),
        );
        // Sequential replay in timestamp order.
        let mut seq_db = db0.clone();
        for sig in &bulk.txns {
            reg.execute(sig, &mut seq_db);
        }
        seq_db.apply_insert_buffers();
        // K-SET execution.
        let mut db = db0.clone();
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &reg,
            config: &config,
        };
        execute_bulk(&mut ctx, StrategyKind::Kset, &bulk);
        assert!(
            db == seq_db,
            "Definition 1: bulk result must equal the sequential result"
        );
    }

    #[test]
    fn relaxed_kset_generation_is_cheaper() {
        let (db0, reg) = counter_db(256);
        let bulk = Bulk::new(
            (0..1000)
                .map(|i| TxnSignature::new(i, 0, vec![Value::Int((i % 256) as i64)]))
                .collect(),
        );
        let run_with = |relax: bool| {
            let mut db = db0.clone();
            let mut gpu = Gpu::c1060();
            let config = EngineConfig::default().with_relaxed_timestamps(relax);
            let mut ctx = ExecContext {
                gpu: &mut gpu,
                db: &mut db,
                registry: &reg,
                config: &config,
            };
            execute_bulk(&mut ctx, StrategyKind::Kset, &bulk).generation
        };
        assert!(run_with(true) < run_with(false));
    }
}
