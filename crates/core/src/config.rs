//! Engine configuration.

use gputx_durability::DurabilityConfig;
use gputx_exec::ExecutorChoice;
use gputx_sim::DeviceSpec;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// How the engine picks the execution strategy for a bulk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// Always use two-phase locking.
    ForceTpl,
    /// Always use partition-based execution.
    ForcePart,
    /// Always use k-set based execution.
    ForceKset,
    /// Use the rule-based selection of Appendix D, Algorithm 1.
    Auto,
    /// Use the cost-model-driven adaptive selector (see
    /// [`crate::adaptive`]): per-bulk profiling scored through the SIMT and
    /// CPU cost models, with hysteresis and decision stats. Constructed
    /// through `EngineBuilder::adaptive()`.
    Adaptive,
}

/// Thresholds of the rule-based strategy selection (Appendix D, Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionThresholds {
    /// Minimum 0-set size for K-SET to fully utilize the GPU (`w̄0`).
    pub min_zero_set: usize,
    /// Maximum number of cross-partition transactions tolerated by PART (`c̄`).
    pub max_cross_partition: usize,
    /// Minimum T-dependency-graph depth above which PART is preferred over
    /// TPL (`d̄`).
    pub min_depth_for_part: u32,
}

impl Default for SelectionThresholds {
    fn default() -> Self {
        SelectionThresholds {
            // Enough 0-set transactions to keep 240 cores busy with several
            // warps per SM.
            min_zero_set: 7_680,
            max_cross_partition: 64,
            min_depth_for_part: 32,
        }
    }
}

/// Configuration of the GPUTx engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The simulated device to run on.
    pub device: DeviceSpec,
    /// Maximum number of transactions per bulk.
    pub bulk_size: usize,
    /// How to pick the execution strategy.
    pub strategy: StrategyChoice,
    /// Thresholds for the automatic strategy selection.
    pub thresholds: SelectionThresholds,
    /// Number of radix-partitioning passes used to group transactions by type
    /// before execution (0 disables grouping). Each pass separates one more
    /// bit of the type id (Appendix D).
    pub grouping_passes: u32,
    /// Number of partitioning-key values per partition for PART (§5.2,
    /// Figure 13; the paper's tuned value is 128).
    pub partition_size: u64,
    /// Whether undo logging is charged for transaction types that need it
    /// (Appendix D "Logging"); functional rollback always works regardless.
    pub undo_logging: bool,
    /// Relax the timestamp constraint (Appendix G): bulk generation skips the
    /// rank computation and locks only enforce mutual exclusion.
    pub relax_timestamps: bool,
    /// How the host executes a bulk's functional work: the serial reference
    /// loop, or the sharded multi-threaded executor running conflict-free
    /// sets / partition groups on worker threads. The simulated GPU timings
    /// are identical either way; only wall-clock time changes.
    pub executor: ExecutorChoice,
    /// Crash durability: when a directory is configured, every committed
    /// bulk appends one redo record (its net typed write-set) to a
    /// write-ahead log there, fsynced per the configured policy, and
    /// `gputx_durability::recover` rebuilds the committed state after a
    /// crash. Disabled by default — the engines then behave exactly as
    /// before, paying zero logging cost.
    pub durability: DurabilityConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            device: DeviceSpec::tesla_c1060(),
            bulk_size: 65_536,
            strategy: StrategyChoice::Auto,
            thresholds: SelectionThresholds::default(),
            grouping_passes: 8,
            partition_size: 128,
            undo_logging: true,
            relax_timestamps: false,
            executor: ExecutorChoice::Serial,
            durability: DurabilityConfig::disabled(),
        }
    }
}

impl EngineConfig {
    /// Configuration preset matching the paper's experimental setup.
    pub fn paper_setup() -> Self {
        Self::default()
    }

    /// Builder-style: force a specific strategy.
    pub fn with_strategy(mut self, strategy: StrategyChoice) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style: set the bulk size.
    pub fn with_bulk_size(mut self, bulk_size: usize) -> Self {
        self.bulk_size = bulk_size;
        self
    }

    /// Builder-style: set the number of grouping passes.
    pub fn with_grouping_passes(mut self, passes: u32) -> Self {
        self.grouping_passes = passes;
        self
    }

    /// Builder-style: set the PART partition size.
    pub fn with_partition_size(mut self, partition_size: u64) -> Self {
        assert!(partition_size > 0, "partition size must be positive");
        self.partition_size = partition_size;
        self
    }

    /// Builder-style: relax the timestamp constraint (Appendix G).
    pub fn with_relaxed_timestamps(mut self, relax: bool) -> Self {
        self.relax_timestamps = relax;
        self
    }

    /// Builder-style: pick the host executor (serial or `parallel(n)`).
    #[deprecated(
        since = "0.1.0",
        note = "construct engines through `EngineBuilder::with_executor`, which applies the choice to every engine flavor"
    )]
    pub fn with_executor(mut self, executor: ExecutorChoice) -> Self {
        self.executor = executor;
        self
    }

    /// Builder-style: enable bulk-granular redo logging into `dir` with the
    /// default `PerBulk` fsync policy (see
    /// [`EngineConfig::with_durability_config`] for the other policies).
    #[deprecated(
        since = "0.1.0",
        note = "construct engines through `EngineBuilder::with_durability`"
    )]
    pub fn with_durability(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability = DurabilityConfig::at(dir);
        self
    }

    /// Builder-style: full durability configuration (directory + fsync
    /// policy, e.g. `DurabilityConfig::at(dir).with_fsync(FsyncPolicy::
    /// EveryN(8))`).
    #[deprecated(
        since = "0.1.0",
        note = "construct engines through `EngineBuilder::with_durability_config`"
    )]
    pub fn with_durability_config(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }
}

/// Configuration of the streaming pipelined engine
/// ([`PipelinedGpuTx`](crate::pipeline::PipelinedGpuTx)).
///
/// The admission stage closes a bulk when it reaches `max_bulk_size`
/// transactions *or* when the oldest queued transaction has waited
/// `max_wait_us` microseconds, whichever comes first — large bulks amortize
/// grouping cost (throughput), the deadline bounds ticket latency, the same
/// trade-off the paper's response-time figures chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Close a bulk at this many transactions.
    pub max_bulk_size: usize,
    /// Close a non-empty bulk after its oldest transaction waited this many
    /// microseconds.
    pub max_wait_us: u64,
    /// Capacity of the bounded admission queue; a full queue blocks `submit`
    /// (backpressure) and fails `try_submit`.
    pub queue_depth: usize,
    /// Host executor for the execution stage (serial or `parallel(n)`),
    /// independent of the one-shot engine's `EngineConfig::executor`.
    pub executor: ExecutorChoice,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_bulk_size: 8_192,
            max_wait_us: 2_000,
            queue_depth: 16_384,
            executor: ExecutorChoice::Serial,
        }
    }
}

impl PipelineConfig {
    /// Builder-style: set the bulk-size close threshold.
    pub fn with_max_bulk_size(mut self, max_bulk_size: usize) -> Self {
        assert!(max_bulk_size > 0, "max_bulk_size must be positive");
        self.max_bulk_size = max_bulk_size;
        self
    }

    /// Builder-style: set the admission deadline in microseconds.
    pub fn with_max_wait_us(mut self, max_wait_us: u64) -> Self {
        self.max_wait_us = max_wait_us;
        self
    }

    /// Builder-style: set the admission queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue_depth must be positive");
        self.queue_depth = queue_depth;
        self
    }

    /// Builder-style: pick the execution-stage host executor.
    pub fn with_executor(mut self, executor: ExecutorChoice) -> Self {
        self.executor = executor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gputx_durability::FsyncPolicy;

    #[test]
    fn default_matches_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.partition_size, 128);
        assert_eq!(c.device.total_cores(), 240);
        assert_eq!(c.strategy, StrategyChoice::Auto);
        assert!(!c.relax_timestamps);
    }

    #[test]
    #[allow(deprecated)] // keeps the forwarding shims honest until removal
    fn builder_methods_apply() {
        let c = EngineConfig::default()
            .with_strategy(StrategyChoice::ForceKset)
            .with_bulk_size(1000)
            .with_grouping_passes(2)
            .with_partition_size(64)
            .with_relaxed_timestamps(true)
            .with_executor(ExecutorChoice::parallel(4));
        assert_eq!(c.strategy, StrategyChoice::ForceKset);
        assert_eq!(c.bulk_size, 1000);
        assert_eq!(c.grouping_passes, 2);
        assert_eq!(c.partition_size, 64);
        assert!(c.relax_timestamps);
        assert_eq!(c.executor, ExecutorChoice::Parallel { threads: 4 });
    }

    #[test]
    fn default_executor_is_serial() {
        assert_eq!(EngineConfig::default().executor, ExecutorChoice::Serial);
    }

    #[test]
    #[allow(deprecated)] // keeps the forwarding shims honest until removal
    fn durability_disabled_by_default_and_builders_apply() {
        let c = EngineConfig::default();
        assert!(!c.durability.enabled());
        let c = c.with_durability_config(
            DurabilityConfig::at("/tmp/gputx-wal").with_fsync(FsyncPolicy::EveryN(4)),
        );
        assert!(c.durability.enabled());
        assert_eq!(c.durability.fsync, FsyncPolicy::EveryN(4));
        let c = EngineConfig::default().with_durability("/tmp/gputx-wal");
        assert_eq!(c.durability.fsync, FsyncPolicy::PerBulk);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_partition_size_rejected() {
        EngineConfig::default().with_partition_size(0);
    }

    #[test]
    fn pipeline_config_builders_apply() {
        let c = PipelineConfig::default()
            .with_max_bulk_size(1024)
            .with_max_wait_us(500)
            .with_queue_depth(32)
            .with_executor(ExecutorChoice::parallel(2));
        assert_eq!(c.max_bulk_size, 1024);
        assert_eq!(c.max_wait_us, 500);
        assert_eq!(c.queue_depth, 32);
        assert!(c.executor.is_parallel());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pipeline_bulk_size_rejected() {
        PipelineConfig::default().with_max_bulk_size(0);
    }
}
