//! Cost-model-driven per-bulk strategy selection (the adaptive selector).
//!
//! Where [`crate::select`] applies the paper's *rule-based* thresholds
//! (Appendix D, Algorithm 1), this module closes the selection loop the way
//! §5 motivates it: each formed bulk is profiled ([`BulkProfile`]), the three
//! execution strategies are *scored* through the existing cost models —
//! K-SET and PART through the SIMT kernel model
//! ([`gputx_sim::cost::CostModel`]), TPL through the serial CPU model
//! ([`gputx_cpu::cost`], because the engines' TPL path is the serial
//! timestamp-order host loop) — and the cheapest one wins. A configurable
//! hysteresis keeps the incumbent strategy unless a challenger beats it by a
//! clear margin, so bursty open-loop load does not thrash between strategies
//! on noise-level cost differences.
//!
//! The selector is deterministic: decisions are a pure function of the
//! profile stream (no randomness, no clocks), so any run can be replayed to
//! the same strategy sequence — the property `tests/adaptive_equivalence.rs`
//! pins down. One hard invariant is enforced on top of the scores: a
//! conflict-free bulk (`depth == 0`, no cross-partition transactions) is
//! never executed with TPL, because a single K-SET wave dominates serial
//! execution for every bulk wide enough to matter.
//!
//! Every decision is recorded into a shared [`DecisionStats`], observable
//! through `PipelinedGpuTx::decision_stats()` / `GpuTxEngine::
//! decision_stats()` while the engine runs.

use crate::config::EngineConfig;
use crate::profiler::BulkProfile;
use crate::strategy::StrategyKind;
use gputx_cpu::cost::{trace_cpu_seconds, CPU_DISPATCH_OVERHEAD_NS};
use gputx_sim::cost::CostModel;
use gputx_sim::{CpuSpec, ThreadTrace};
use std::sync::{Arc, Mutex};

/// Tuning knobs of the [`AdaptiveSelector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Relative cost advantage a challenger strategy needs over the incumbent
    /// before the selector switches (0.15 = 15 % cheaper). Zero disables
    /// hysteresis.
    pub hysteresis: f64,
    /// Upper bound for the suggested bulk size; the pipelined engine feeds
    /// its `max_bulk_size` here so suggestions never exceed the configured
    /// admission limit.
    pub bulk_ceiling: usize,
    /// Cap on the per-decision history kept in [`DecisionStats`].
    pub history_cap: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            hysteresis: 0.15,
            bulk_ceiling: 8_192,
            history_cap: 4_096,
        }
    }
}

/// Estimated execution cost of each strategy for one bulk, in seconds.
///
/// K-SET and PART are simulated-GPU kernel times; TPL is serial host time.
/// The units are comparable the same way the paper's Figure 12 compares
/// strategies: as end-to-end time for the bulk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyScores {
    /// Per-rank conflict-free waves on the simulated GPU.
    pub kset_secs: f64,
    /// One GPU thread per partition group (or the serial fallback cost when
    /// cross-partition transactions force it).
    pub part_secs: f64,
    /// Serial timestamp-order execution on the host.
    pub tpl_secs: f64,
}

impl StrategyScores {
    /// The score of one strategy.
    pub fn of(&self, strategy: StrategyKind) -> f64 {
        match strategy {
            StrategyKind::Kset => self.kset_secs,
            StrategyKind::Part => self.part_secs,
            StrategyKind::Tpl => self.tpl_secs,
        }
    }
}

/// One selector decision: the chosen strategy, the bulk sizing hint for the
/// admission stage, and the scores it was based on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The strategy the bulk should execute with.
    pub strategy: StrategyKind,
    /// Bulk size the admission stage should aim for next: large bulks for
    /// K-SET (parallelism amortizes launch overhead), smaller bulks for the
    /// serialized strategies (bounding latency costs no throughput there).
    pub suggested_bulk_size: usize,
    /// The per-strategy cost estimates behind the choice.
    pub scores: StrategyScores,
    /// True when this decision changed strategy relative to the previous
    /// bulk.
    pub switched: bool,
}

/// Running tally of adaptive decisions, shared between the selector (on the
/// grouping stage) and observers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionStats {
    /// Bulks executed with K-SET.
    pub kset: u64,
    /// Bulks executed with PART.
    pub part: u64,
    /// Bulks executed with TPL.
    pub tpl: u64,
    /// Number of decisions that changed strategy.
    pub switches: u64,
    /// Most recent bulk-size suggestion.
    pub last_suggested_bulk_size: usize,
    /// Chosen strategies in decision order, capped at
    /// [`AdaptiveConfig::history_cap`] (oldest dropped first).
    pub history: Vec<StrategyKind>,
}

impl DecisionStats {
    /// Total number of decisions recorded.
    pub fn total(&self) -> u64 {
        self.kset + self.part + self.tpl
    }

    /// Decisions for one strategy.
    pub fn count(&self, strategy: StrategyKind) -> u64 {
        match strategy {
            StrategyKind::Kset => self.kset,
            StrategyKind::Part => self.part,
            StrategyKind::Tpl => self.tpl,
        }
    }

    /// The decision histogram as `(strategy, count)` pairs.
    pub fn histogram(&self) -> [(StrategyKind, u64); 3] {
        [
            (StrategyKind::Kset, self.kset),
            (StrategyKind::Part, self.part),
            (StrategyKind::Tpl, self.tpl),
        ]
    }

    /// True when at least two different strategies were chosen — the signal
    /// that the workload actually exercised the selector.
    pub fn non_degenerate(&self) -> bool {
        self.histogram().iter().filter(|(_, n)| *n > 0).count() >= 2
    }

    fn record(&mut self, decision: &Decision, cap: usize) {
        match decision.strategy {
            StrategyKind::Kset => self.kset += 1,
            StrategyKind::Part => self.part += 1,
            StrategyKind::Tpl => self.tpl += 1,
        }
        if decision.switched {
            self.switches += 1;
        }
        self.last_suggested_bulk_size = decision.suggested_bulk_size;
        if self.history.len() >= cap.max(1) {
            self.history.remove(0);
        }
        self.history.push(decision.strategy);
    }
}

/// Cloneable observer handle onto a selector's [`DecisionStats`].
#[derive(Debug, Clone, Default)]
pub struct DecisionStatsHandle(Arc<Mutex<DecisionStats>>);

impl DecisionStatsHandle {
    /// A copy of the stats at this instant.
    pub fn snapshot(&self) -> DecisionStats {
        self.0.lock().expect("decision stats lock").clone()
    }
}

/// The per-bulk adaptive selector: cost-model scoring plus hysteresis.
#[derive(Debug)]
pub struct AdaptiveSelector {
    model: CostModel,
    cpu: CpuSpec,
    partition_size: u64,
    config: AdaptiveConfig,
    last: Option<StrategyKind>,
    stats: DecisionStatsHandle,
}

impl AdaptiveSelector {
    /// Build a selector for an engine configuration. `bulk_ceiling` bounds
    /// the sizing suggestions (the pipelined engine passes its
    /// `max_bulk_size`, the one-shot engine its `bulk_size`).
    pub fn new(engine: &EngineConfig, adaptive: AdaptiveConfig) -> Self {
        AdaptiveSelector {
            model: CostModel::new(engine.device.clone()),
            cpu: CpuSpec::xeon_e5520(),
            partition_size: engine.partition_size,
            config: adaptive,
            last: None,
            stats: DecisionStatsHandle::default(),
        }
    }

    /// The shared stats handle (clone it out before moving the selector onto
    /// the grouping stage).
    pub fn stats_handle(&self) -> DecisionStatsHandle {
        self.stats.clone()
    }

    /// Score the profile, apply hysteresis against the previous choice, and
    /// record the decision.
    pub fn decide(&mut self, profile: &BulkProfile) -> Decision {
        let scores = score_profile(&self.model, &self.cpu, self.partition_size, profile);
        let best = cheapest_allowed(&scores, profile);
        let strategy = match self.last {
            // Keep the incumbent unless the challenger is decisively cheaper
            // — but never retain a strategy the profile forbids.
            Some(last) if last != best && allowed(last, profile) => {
                if scores.of(best) < scores.of(last) * (1.0 - self.config.hysteresis) {
                    best
                } else {
                    last
                }
            }
            _ => best,
        };
        let decision = Decision {
            strategy,
            suggested_bulk_size: suggest_bulk_size(strategy, self.config.bulk_ceiling),
            scores,
            switched: self.last.is_some_and(|l| l != strategy),
        };
        self.last = Some(strategy);
        self.stats
            .0
            .lock()
            .expect("decision stats lock")
            .record(&decision, self.config.history_cap);
        decision
    }
}

/// Stateless cost-based choice (no hysteresis, no stats): what
/// [`AdaptiveSelector::decide`] would pick for the first bulk it ever sees.
/// This is the `StrategyChoice::Adaptive` resolution used by one-shot
/// call sites that have no selector to thread state through.
pub fn cost_based_choice(config: &EngineConfig, profile: &BulkProfile) -> StrategyKind {
    let model = CostModel::new(config.device.clone());
    let scores = score_profile(
        &model,
        &CpuSpec::xeon_e5520(),
        config.partition_size,
        profile,
    );
    cheapest_allowed(&scores, profile)
}

/// A conflict-free bulk must never run TPL: one K-SET wave strictly
/// dominates serial execution.
fn allowed(strategy: StrategyKind, profile: &BulkProfile) -> bool {
    let conflict_free = profile.depth == 0 && profile.cross_partition == 0 && profile.size > 0;
    !(conflict_free && strategy == StrategyKind::Tpl)
}

fn cheapest_allowed(scores: &StrategyScores, profile: &BulkProfile) -> StrategyKind {
    // Tie-break in K-SET → PART → TPL order (most to least parallel).
    let order = [StrategyKind::Kset, StrategyKind::Part, StrategyKind::Tpl];
    order
        .into_iter()
        .filter(|s| allowed(*s, profile))
        .min_by(|a, b| {
            scores
                .of(*a)
                .partial_cmp(&scores.of(*b))
                .expect("scores are finite")
        })
        .expect("K-SET is always allowed")
}

fn suggest_bulk_size(strategy: StrategyKind, ceiling: usize) -> usize {
    let ceiling = ceiling.max(1);
    match strategy {
        StrategyKind::Kset => ceiling,
        StrategyKind::Part => (ceiling / 2).max(1),
        StrategyKind::Tpl => (ceiling / 8).max(1),
    }
}

/// Prototype per-transaction thread trace used for scoring: a short OLTP
/// transaction (a few index probes, a handful of field reads and writes,
/// some arithmetic). `scale` stacks several transactions into one thread,
/// the shape of a partition group executed serially by one GPU thread.
fn prototype_trace(scale: usize) -> ThreadTrace {
    let mut t = ThreadTrace::new(0);
    for _ in 0..scale.max(1) {
        t.compute(200);
        for _ in 0..10 {
            t.read(8);
        }
        for _ in 0..4 {
            t.write(8);
        }
    }
    t
}

/// Score all three strategies for a profile. Pure: same inputs, same scores.
pub(crate) fn score_profile(
    model: &CostModel,
    cpu: &CpuSpec,
    partition_size: u64,
    profile: &BulkProfile,
) -> StrategyScores {
    let clock_hz = model.spec().clock_ghz * 1e9;
    let size = profile.size.max(1);
    let proto = prototype_trace(1);

    // TPL: the engines execute the Serial plan as a host loop in timestamp
    // order — one CPU core, one transaction at a time, plus dispatch.
    let tpl_secs = size as f64 * (trace_cpu_seconds(&proto, cpu) + CPU_DISPATCH_OVERHEAD_NS * 1e-9);

    // K-SET: one kernel launch per rank. The 0-set forms the first wave; the
    // remaining transactions are assumed evenly spread over the remaining
    // `depth` waves (the profiler only keeps the aggregate shape).
    let w0 = profile.zero_set_size.clamp(1, size);
    let mut kset_cycles = model.uniform_kernel_cost(w0, &proto).cycles;
    let rest = size - w0.min(size);
    if profile.depth > 0 && rest > 0 {
        let per_wave = rest.div_ceil(profile.depth as usize).max(1);
        let full_waves = rest / per_wave;
        let wave_cost = model.uniform_kernel_cost(per_wave, &proto).cycles;
        kset_cycles += full_waves as f64 * wave_cost;
        let tail = rest - full_waves * per_wave;
        if tail > 0 {
            kset_cycles += model.uniform_kernel_cost(tail, &proto).cycles;
        }
    }
    let kset_secs = kset_cycles / clock_hz;

    // PART: cross-partition transactions force the whole-bulk serial
    // fallback (§5.2), costed as TPL plus the wasted partitioning attempt.
    // Otherwise one GPU thread per partition group runs its group serially.
    let part_secs = if profile.cross_partition > 0 {
        tpl_secs * 1.05
    } else {
        let keys = profile.distinct_partitions.max(1);
        let groups = keys.div_ceil(partition_size.max(1) as usize).max(1);
        let per_group = size.div_ceil(groups);
        model
            .uniform_kernel_cost(groups, &prototype_trace(per_group))
            .cycles
            / clock_hz
    };

    StrategyScores {
        kset_secs,
        part_secs,
        tpl_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(
        size: usize,
        depth: u32,
        zero: usize,
        cross: usize,
        partitions: usize,
    ) -> BulkProfile {
        BulkProfile {
            size,
            depth,
            zero_set_size: zero,
            cross_partition: cross,
            distinct_partitions: partitions,
            distinct_types: 1,
            type_histogram: vec![size],
        }
    }

    fn selector() -> AdaptiveSelector {
        AdaptiveSelector::new(&EngineConfig::default(), AdaptiveConfig::default())
    }

    #[test]
    fn conflict_free_bulk_picks_kset() {
        let mut s = selector();
        let d = s.decide(&profile(8192, 0, 8192, 0, 8192));
        assert_eq!(d.strategy, StrategyKind::Kset);
        assert!(d.scores.kset_secs < d.scores.tpl_secs);
    }

    #[test]
    fn deep_chain_picks_tpl() {
        // A single hot key: depth ≈ size, one transaction per wave. Launch
        // overhead × waves dwarfs the serial host loop.
        let mut s = selector();
        let d = s.decide(&profile(4096, 4095, 1, 0, 1));
        assert_eq!(d.strategy, StrategyKind::Tpl);
        assert!(d.scores.tpl_secs < d.scores.kset_secs);
    }

    #[test]
    fn partitioned_chains_pick_part() {
        // Many partitions, each a deep chain: K-SET degenerates to thin
        // waves, TPL is serial, but PART runs the partitions in parallel.
        // Partition size 1 (one key per partition, the TPC-B/TPC-C setup)
        // keeps the 128 keys in 128 distinct groups.
        let mut s = AdaptiveSelector::new(
            &EngineConfig::default().with_partition_size(1),
            AdaptiveConfig::default(),
        );
        let d = s.decide(&profile(8192, 63, 128, 0, 128));
        assert_eq!(d.strategy, StrategyKind::Part, "scores: {:?}", d.scores);
        assert!(d.scores.part_secs < d.scores.tpl_secs);
        assert!(d.scores.part_secs < d.scores.kset_secs);
    }

    #[test]
    fn cross_partition_bulk_never_scores_part_below_tpl() {
        let scores = score_profile(
            &CostModel::new(EngineConfig::default().device),
            &CpuSpec::xeon_e5520(),
            128,
            &profile(4096, 100, 10, 200, 64),
        );
        assert!(scores.part_secs > scores.tpl_secs);
    }

    #[test]
    fn never_tpl_for_conflict_free_bulk() {
        // Even a tiny conflict-free bulk (where launch overhead makes the
        // GPU look bad) must not be retained on TPL.
        let mut s = selector();
        s.decide(&profile(4096, 4095, 1, 0, 1)); // locks in TPL
        let d = s.decide(&profile(4, 0, 4, 0, 4));
        assert_ne!(d.strategy, StrategyKind::Tpl);
    }

    #[test]
    fn hysteresis_keeps_incumbent_on_marginal_scores() {
        let mut s = selector();
        let first = s.decide(&profile(8192, 0, 8192, 0, 8192));
        assert_eq!(first.strategy, StrategyKind::Kset);
        // A profile whose PART/K-SET scores are close: slight depth. The
        // incumbent should survive unless PART wins by > hysteresis.
        let second = s.decide(&profile(8192, 1, 8000, 0, 8192));
        if second.strategy != StrategyKind::Kset {
            assert!(
                second.scores.of(second.strategy) < second.scores.kset_secs * (1.0 - 0.15),
                "a switch must clear the hysteresis margin: {:?}",
                second.scores
            );
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let profiles: Vec<BulkProfile> = (0..32)
            .map(|i| {
                profile(
                    1024 + i * 7,
                    (i as u32 * 131) % 1024,
                    1 + (i * 37) % 1024,
                    (i * 13) % 80,
                    1 + (i * 29) % 256,
                )
            })
            .collect();
        let run = |mut s: AdaptiveSelector| -> Vec<StrategyKind> {
            profiles.iter().map(|p| s.decide(p).strategy).collect()
        };
        assert_eq!(run(selector()), run(selector()));
    }

    #[test]
    fn stats_tally_decisions_and_switches() {
        let mut s = selector();
        let handle = s.stats_handle();
        s.decide(&profile(8192, 0, 8192, 0, 8192)); // Kset
        s.decide(&profile(4096, 4095, 1, 0, 1)); // Tpl (switch)
        s.decide(&profile(4096, 4095, 1, 0, 1)); // Tpl
        let stats = handle.snapshot();
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.kset, 1);
        assert_eq!(stats.tpl, 2);
        assert_eq!(stats.switches, 1);
        assert_eq!(
            stats.history,
            vec![StrategyKind::Kset, StrategyKind::Tpl, StrategyKind::Tpl]
        );
        assert!(stats.non_degenerate());
    }

    #[test]
    fn history_is_capped() {
        let mut s = AdaptiveSelector::new(
            &EngineConfig::default(),
            AdaptiveConfig {
                history_cap: 4,
                ..AdaptiveConfig::default()
            },
        );
        for _ in 0..10 {
            s.decide(&profile(8192, 0, 8192, 0, 8192));
        }
        let stats = s.stats_handle().snapshot();
        assert_eq!(stats.history.len(), 4);
        assert_eq!(stats.total(), 10);
    }

    #[test]
    fn sizing_follows_strategy() {
        assert_eq!(suggest_bulk_size(StrategyKind::Kset, 8192), 8192);
        assert_eq!(suggest_bulk_size(StrategyKind::Part, 8192), 4096);
        assert_eq!(suggest_bulk_size(StrategyKind::Tpl, 8192), 1024);
        assert_eq!(suggest_bulk_size(StrategyKind::Tpl, 4), 1);
    }

    #[test]
    fn stateless_choice_matches_first_decision() {
        let config = EngineConfig::default();
        for p in [
            profile(8192, 0, 8192, 0, 8192),
            profile(4096, 4095, 1, 0, 1),
            profile(8192, 63, 128, 0, 128),
        ] {
            let mut s = selector();
            assert_eq!(cost_based_choice(&config, &p), s.decide(&p).strategy);
        }
    }
}
