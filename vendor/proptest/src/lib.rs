//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements the
//! slice of the proptest API the workspace's property tests use: the
//! [`strategy::Strategy`] trait (ranges, tuples, `prop_map`), `prop::bool::ANY`,
//! `prop::collection::vec`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Each property runs [`CASES`] deterministic random
//! cases (no shrinking — a failing case prints its inputs via the assert
//! message instead). Swapping in the real proptest later is source-compatible.

/// Number of random cases generated per property.
pub const CASES: usize = 64;

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    /// splitmix64-based RNG; every property test run is reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed constructor used by the `proptest!` macro expansion.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_D00D,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn below(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "cannot sample empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (mirrors `proptest`'s
        /// `Strategy::prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // wrapping handles sign-extended casts of negative bounds.
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    // wrapping handles sign-extended casts of negative bounds.
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections, `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        //! Module-style access (`prop::collection::vec`, `prop::bool::ANY`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes
/// a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::TestRng::deterministic();
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test (plain `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0u32..=4, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_of_tuples_respects_size(v in prop::collection::vec((0u64..12, prop::bool::ANY), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (n, _flag) in v {
                prop_assert!(n < 12);
            }
        }

        #[test]
        fn prop_map_applies(v in (1u64..100).prop_map(|n| n * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((2..200).contains(&v));
        }
    }
}
