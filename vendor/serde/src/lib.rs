//! Offline shim for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! just enough surface for the workspace to compile: the `Serialize` /
//! `Deserialize` trait names and the derive macros (which expand to nothing).
//! No code in the workspace performs actual serialization yet; when a future
//! PR needs it, this shim is replaced by the real `serde` via a registry or a
//! full vendor drop — the source-level API (imports + derives) is identical.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
