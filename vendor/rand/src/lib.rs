//! Offline shim for `rand` (0.9-flavoured API surface).
//!
//! The build environment has no crates.io access, so this crate implements the
//! subset of `rand` the workspace actually uses — `Rng::random_range`,
//! `Rng::random_bool`, `SeedableRng::seed_from_u64` and `rngs::StdRng` — on
//! top of a splitmix64 generator. All workloads seed explicitly, so runs are
//! deterministic; statistical quality of splitmix64 is more than adequate for
//! workload generation. Swapping in the real `rand` later is source-compatible.

use std::ops::{Range, RangeInclusive};

/// A generator seedable from a `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // wrapping_sub handles sign-extended casts of negative bounds.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // wrapping_sub handles sign-extended casts of negative bounds.
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): full 2^64 period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let s: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&s));
            let t: i32 = rng.random_range(-100..-50);
            assert!((-100..-50).contains(&t));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
    }
}
