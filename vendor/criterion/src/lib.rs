//! Offline shim for `criterion`.
//!
//! Implements the subset of the Criterion 0.5 API used by the bench targets:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::new`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Instead of Criterion's
//! statistical machinery it runs each benchmark `sample_size` times and prints
//! min/mean wall-clock per iteration — enough to eyeball regressions locally
//! and to keep `cargo bench --no-run` compiling the harness in CI.
//!
//! The binaries accept (and ignore) the CLI arguments cargo passes, most
//! importantly `--bench` and `--test`; under `--test` each benchmark body runs
//! exactly once so `cargo test --benches` stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// The top-level harness state (a stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Parse the CLI arguments cargo passes to bench binaries.
    pub fn from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let test_mode = self.test_mode;
        run_one("", &id.into().id, 10, test_mode, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into().id,
            self.sample_size,
            self.test_mode,
            f,
        );
        self
    }

    /// Benchmark a closure that borrows a fixed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.id, self.sample_size, self.test_mode, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: if test_mode { 1 } else { sample_size },
        elapsed: Vec::new(),
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if test_mode {
        println!("test {label} ... ok");
    } else if bencher.elapsed.is_empty() {
        println!("{label}: no samples recorded");
    } else {
        let min = bencher.elapsed.iter().min().unwrap();
        let total: Duration = bencher.elapsed.iter().sum();
        let mean = total / bencher.elapsed.len() as u32;
        println!(
            "{label}: {} samples, min {min:?}, mean {mean:?}",
            bencher.elapsed.len()
        );
    }
}

/// Define a bench entry point composed of `fn(&mut Criterion)` functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
