//! Banking scenario: the TPC-B workload executed with all three strategies,
//! plus the H-Store-style CPU counterpart for comparison — a miniature version
//! of the paper's Figure 7 on one benchmark.
//!
//! Run with: `cargo run --release --example banking`

use gputx_core::{execute_bulk, Bulk, EngineConfig, ExecContext, StrategyKind};
use gputx_cpu::engine::CpuEngine;
use gputx_sim::Gpu;
use gputx_workloads::TpcbConfig;

fn main() {
    let n_txns = 50_000;
    let mut bundle = TpcbConfig::default().with_scale_factor(32).build();
    println!(
        "TPC-B with {} branches, {} accounts",
        bundle.db.table_by_name("branch").num_rows(),
        bundle.db.table_by_name("account").num_rows()
    );
    let sigs = bundle.generate_signatures(n_txns, 0);

    // GPU: each strategy on its own copy of the database.
    for strategy in [StrategyKind::Tpl, StrategyKind::Part, StrategyKind::Kset] {
        let mut db = bundle.db.clone();
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &bundle.registry,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, strategy, &Bulk::new(sigs.clone()));
        let report = out.into_report();
        println!(
            "GPU {strategy:<5}: {:>8.0} ktps  (generation {:.2} ms, execution {:.2} ms)",
            report.throughput().ktps(),
            report.generation.as_millis(),
            report.execution.as_millis()
        );
    }

    // CPU counterpart: quad core and single core.
    for (label, engine) in [
        ("CPU 4-core", CpuEngine::xeon_quad_core()),
        ("CPU 1-core", CpuEngine::xeon_quad_core().single_core()),
    ] {
        let mut db = bundle.db.clone();
        let report = engine.execute_bulk(&mut db, &bundle.registry, &sigs);
        println!("{label}: {:>8.0} ktps", report.throughput().ktps());
    }

    // Consistency check: branch balances equal the sum of history deltas.
    let mut db = bundle.db.clone();
    let mut gpu = Gpu::c1060();
    let config = EngineConfig::default();
    let mut ctx = ExecContext {
        gpu: &mut gpu,
        db: &mut db,
        registry: &bundle.registry,
        config: &config,
    };
    execute_bulk(&mut ctx, StrategyKind::Kset, &Bulk::new(sigs));
    let branch = db.table_by_name("branch");
    let total: f64 = (0..branch.num_rows() as u64)
        .map(|r| branch.get(r, 1).as_double())
        .sum();
    let history = db.table_by_name("history");
    let deltas: f64 = (0..history.num_rows() as u64)
        .map(|r| history.get(r, 3).as_double())
        .sum();
    println!("sum(branch balances) = {total:.2}, sum(history deltas) = {deltas:.2}");
    assert!((total - deltas).abs() < 1e-6);
}
