//! Retail scenario: the TPC-C workload, showing how cross-partition
//! transactions steer the rule-based strategy selection (Appendix D,
//! Algorithm 1) and what they cost PART.
//!
//! Run with: `cargo run --release --example retail`

use gputx_core::profiler::profile_bulk;
use gputx_core::select::choose_by_rule;
use gputx_core::{execute_bulk, Bulk, EngineConfig, ExecContext, StrategyKind};
use gputx_sim::Gpu;
use gputx_workloads::TpccConfig;

fn run_case(label: &str, cfg: TpccConfig, n_txns: usize) {
    let mut bundle = cfg.build();
    let sigs = bundle.generate_signatures(n_txns, 0);
    let engine_cfg = EngineConfig::default();
    let profile = profile_bulk(&bundle.registry, &bundle.db, &sigs);
    let chosen = choose_by_rule(&profile, &engine_cfg.thresholds);
    println!(
        "\n{label}: {} txns, 0-set {} / depth {} / cross-partition {} -> Algorithm 1 picks {chosen}",
        profile.size, profile.zero_set_size, profile.depth, profile.cross_partition
    );
    for strategy in [StrategyKind::Tpl, StrategyKind::Part, StrategyKind::Kset] {
        let mut db = bundle.db.clone();
        let mut gpu = Gpu::c1060();
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &bundle.registry,
            config: &engine_cfg,
        };
        let out = execute_bulk(&mut ctx, strategy, &Bulk::new(sigs.clone()));
        println!(
            "  {strategy:<5} {:>8.0} ktps{}  ({} committed, {} aborted)",
            gputx_sim::Throughput::from_count(out.transactions as u64, out.total()).ktps(),
            if out.fell_back_to_tpl {
                "  [fell back to TPL]"
            } else {
                ""
            },
            out.committed,
            out.aborted
        );
    }
}

fn main() {
    // Standard mix: 15 % remote payments and ~1 % remote new-orders make some
    // transactions cross-partition.
    run_case(
        "TPC-C standard mix (with cross-partition transactions)",
        TpccConfig::default().with_warehouses(4),
        20_000,
    );
    // Single-partition variant: everything stays within its home warehouse.
    run_case(
        "TPC-C single-partition variant",
        TpccConfig::default()
            .with_warehouses(4)
            .single_partition_only(),
        20_000,
    );
}
