//! Quickstart: register a stored procedure, submit transactions, execute a
//! bulk on the simulated GPU and inspect the report.
//!
//! Run with: `cargo run --release --example quickstart`

use gputx_core::EngineBuilder;
use gputx_storage::schema::{ColumnDef, TableSchema};
use gputx_storage::{DataItemId, DataType, Database, Value};
use gputx_txn::{BasicOp, ProcedureDef, ProcedureRegistry};

fn main() {
    // 1. Define the schema and load some data.
    let mut db = Database::column_store();
    let accounts = db.create_table(TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("balance", DataType::Double),
        ],
        vec![0],
    ));
    for i in 0..10_000i64 {
        db.table_mut(accounts)
            .insert(vec![Value::Int(i), Value::Double(100.0)]);
    }

    // 2. Register a transaction type (a stored procedure): a deposit.
    //    Each type declares its read/write set and partitioning key so the
    //    engine can build the T-dependency graph and pick a strategy.
    let mut registry = ProcedureRegistry::new();
    let deposit = registry.register(ProcedureDef::new(
        "deposit",
        move |params, _db| {
            vec![BasicOp::write(DataItemId::new(
                accounts,
                params[0].as_int() as u64,
                1,
            ))]
        },
        |params| Some(params[0].as_int() as u64),
        move |ctx| {
            let row = ctx.param_int(0) as u64;
            let amount = ctx.param_double(1);
            let balance = ctx.read(accounts, row, 1).as_double();
            if amount < 0.0 && balance + amount < 0.0 {
                ctx.abort("insufficient funds");
                return;
            }
            ctx.write(accounts, row, 1, Value::Double(balance + amount));
        },
    ));

    // 3. Create the engine (loads the database into simulated device memory).
    let mut engine = EngineBuilder::new(db, registry).build();
    println!(
        "database loaded to device in {:.3} ms ({} bytes resident)",
        engine.load_time().as_millis(),
        engine.gpu().memory.used()
    );

    // 4. Submit a burst of transactions and execute them as bulks.
    for i in 0..100_000u64 {
        engine.submit(
            deposit,
            vec![Value::Int((i % 10_000) as i64), Value::Double(5.0)],
        );
    }
    let reports = engine.run_until_empty();

    // 5. Inspect the results.
    for (i, report) in reports.iter().enumerate() {
        println!(
            "bulk {i}: {} txns via {} — gen {:.3} ms, exec {:.3} ms, {:.0} ktps",
            report.transactions,
            report.strategy,
            report.generation.as_millis(),
            report.execution.as_millis(),
            report.throughput().ktps()
        );
    }
    println!(
        "total committed: {}, aborted: {}, overall throughput: {:.0} ktps",
        engine.total_committed(),
        engine.total_aborted(),
        engine.overall_throughput().ktps()
    );
    let final_balance = engine.db().table_by_name("accounts").get(0, 1);
    println!("account 0 balance after 10 deposits of 5.0: {final_balance}");
    assert_eq!(final_balance, Value::Double(150.0));
}
