//! Telecom scenario: the TM1 benchmark driven through the full engine with
//! automatic strategy selection, plus a response-time/throughput sweep like
//! the paper's Figure 9.
//!
//! Run with: `cargo run --release --example telecom`

use gputx_core::pipeline::{simulate_pipeline, IntervalSimConfig};
use gputx_core::{EngineBuilder, EngineConfig, StrategyKind};
use gputx_sim::SimDuration;
use gputx_storage::index::IndexKey;
use gputx_workloads::Tm1Config;

fn main() {
    let mut bundle = Tm1Config { scale_factor: 4 }.build();
    println!(
        "TM1 with {} subscribers, {} call-forwarding rows",
        bundle.db.table_by_name("subscriber").num_rows(),
        bundle.db.table_by_name("call_forwarding").num_rows()
    );

    // Index handles are resolved once (`index_id`) and probed by handle —
    // the string-keyed lookup path is deprecated.
    let sub_t = bundle.db.table_id("subscriber").expect("table exists");
    let by_nbr = bundle.db.index_id(sub_t, "by_nbr").expect("index exists");
    let row = bundle
        .db
        .lookup_unique_id(by_nbr, &IndexKey::single(format!("{:015}", 42)))
        .expect("subscriber 42 exists");
    println!(
        "subscriber 42 resolved by handle: row {row}, vlr_location {}",
        bundle.db.table(sub_t).get_i64(row, 4)
    );

    // Drive the engine end to end with automatic strategy selection.
    let mut engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_bulk_size(16_384)
        .build();
    for (ty, params) in bundle.generate(80_000) {
        engine.submit(ty, params);
    }
    let reports = engine.run_until_empty();
    println!(
        "{} bulks, {:.0} ktps overall, {} committed / {} aborted",
        reports.len(),
        engine.overall_throughput().ktps(),
        engine.total_committed(),
        engine.total_aborted()
    );
    let stats = engine.gpu().stats();
    println!(
        "PCIe traffic: {:.1} KB in, {:.1} KB out ({:.2} ms total transfer time)",
        stats.h2d_bytes as f64 / 1024.0,
        stats.d2h_bytes as f64 / 1024.0,
        (stats.h2d_time + stats.d2h_time).as_millis()
    );

    // Response time vs throughput, varying the bulk-cut interval (Figure 9).
    println!("\ninterval(ms)  avg response(ms)  throughput(ktps)");
    for interval_ms in [2.0f64, 10.0, 40.0, 100.0] {
        let mut db = bundle.db.clone();
        let registry = bundle.registry.clone();
        let pipeline = IntervalSimConfig {
            arrival_rate_tps: 1_000_000.0,
            interval: SimDuration::from_millis(interval_ms),
            horizon: SimDuration::from_millis(80.0),
        };
        let report = simulate_pipeline(
            &mut db,
            &registry,
            &EngineConfig::default(),
            StrategyKind::Kset,
            &pipeline,
            |_| bundle.next_txn(),
        );
        println!(
            "{interval_ms:>11.0}  {:>16.1}  {:>17.0}",
            report.avg_response.as_millis(),
            report.throughput.ktps()
        );
    }
}
