//! gputx-suite — top-level facade for the GPUTx reproduction workspace.
//!
//! Re-exports the individual crates under short names so the examples and the
//! cross-crate integration tests can use one import root.

#![forbid(unsafe_code)]

pub use gputx_analytics as analytics;
pub use gputx_client as client;
pub use gputx_core as core;
pub use gputx_cpu as cpu;
pub use gputx_durability as durability;
pub use gputx_exec as exec;
pub use gputx_faults as faults;
pub use gputx_replication as replication;
pub use gputx_server as server;
pub use gputx_sim as sim;
pub use gputx_storage as storage;
pub use gputx_txn as txn;
pub use gputx_workloads as workloads;
