//! The adaptive-execution equivalence matrix: strategy selection is a pure
//! performance decision and must never change results.
//!
//! For TM1, TPC-B, TPC-C and the hot-key ledger, the same transaction
//! stream is executed under every strategy choice (ForceTpl / ForcePart /
//! ForceKset / Adaptive) crossed with every executor (serial and 1/2/4/8
//! worker threads), all with the same fixed bulk boundaries. Every
//! configuration must produce exactly the reference's per-transaction
//! outcomes and a bit-identical final database; the reference itself is
//! cross-checked against an independent chunked serial TPL replay.
//!
//! The property tests then pin the selector itself: decisions are a pure
//! function of the profile stream (same stream, same decisions — no clocks,
//! no RNG), a conflict-free bulk is never sent to the serial TPL loop even
//! when hysteresis favours it, and a seeded adaptive engine run replays to
//! the same decision history and final state every time.

use gputx_core::{
    execute_bulk, AdaptiveConfig, AdaptiveSelector, Bulk, BulkProfile, EngineBuilder, EngineConfig,
    ExecContext, StrategyChoice, StrategyKind,
};
use gputx_exec::ExecutorChoice;
use gputx_sim::Gpu;
use gputx_storage::{Database, Value};
use gputx_txn::{ProcedureRegistry, TxnId, TxnOutcome, TxnSignature, TxnTypeId};
use gputx_workloads::{LedgerConfig, Tm1Config, TpcbConfig, TpccConfig, WorkloadBundle};
use proptest::prelude::*;

/// Transactions per workload and fixed bulk size: every engine run below
/// drains the same stream in the same `N / BULK` bulks.
const N: usize = 480;
const BULK: usize = 96;

fn bundle_for(name: &str) -> WorkloadBundle {
    match name {
        "tm1" => Tm1Config::default().build(),
        "tpcb" => TpcbConfig::default().build(),
        // Multi-warehouse with the default cross-partition mix: PART must
        // take its whole-bulk serial fallback and still agree.
        "tpcc" => TpccConfig::default().build(),
        "ledger" => LedgerConfig::default().with_accounts(1024).build(),
        other => panic!("unknown workload {other}"),
    }
}

/// One reproducible stream of submit-able (type, params) pairs. Drawn from
/// a fresh bundle so that generators with internal phase state (the ledger)
/// replay identically on every call.
fn draw_stream(bundle: &mut WorkloadBundle, seed: u64, n: usize) -> Vec<(TxnTypeId, Vec<Value>)> {
    bundle.reseed(seed);
    bundle.generate(n)
}

/// Run the full stream through a one-shot engine under one configuration;
/// return the final database, the per-transaction outcomes and (for the
/// adaptive configuration) the decision tally.
fn run_config(
    db0: &Database,
    registry: &ProcedureRegistry,
    txns: &[(TxnTypeId, Vec<Value>)],
    strategy: StrategyChoice,
    executor: ExecutorChoice,
) -> (
    Database,
    Vec<(TxnId, TxnOutcome)>,
    Option<gputx_core::DecisionStats>,
) {
    let mut engine = EngineBuilder::new(db0.clone(), registry.clone())
        .with_strategy(strategy)
        .with_executor(executor)
        .with_bulk_size(BULK)
        .build();
    for (ty, params) in txns {
        engine.submit(*ty, params.clone());
    }
    engine.run_until_empty();
    let outcomes = engine
        .results()
        .iter()
        .map(|r| (r.id, r.outcome.clone()))
        .collect();
    let stats = engine.decision_stats();
    (engine.db().clone(), outcomes, stats)
}

/// Independent reference: chop the signature stream into the same bulks and
/// execute each with the serial TPL loop through the raw strategy entry
/// point — no engine, no pool, no selector.
fn chunked_serial_replay(
    db0: &Database,
    registry: &ProcedureRegistry,
    sigs: &[TxnSignature],
) -> Database {
    let mut db = db0.clone();
    let mut gpu = Gpu::c1060();
    let config = EngineConfig::default();
    for chunk in sigs.chunks(BULK) {
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry,
            config: &config,
        };
        execute_bulk(&mut ctx, StrategyKind::Tpl, &Bulk::new(chunk.to_vec()));
    }
    db
}

fn assert_matrix_equivalent(name: &str, seed: u64) {
    let mut bundle = bundle_for(name);
    let txns = draw_stream(&mut bundle, seed, N);
    // The signature stream for the raw replay comes from a second, fresh
    // bundle: stateful generators (the ledger's phase counter) would
    // otherwise produce a different stream on the second draw.
    let mut bundle2 = bundle_for(name);
    bundle2.reseed(seed);
    let sigs = bundle2.generate_signatures(N, 0);
    let (db0, registry) = (bundle.db.clone(), bundle.registry.clone());

    let (ref_db, ref_outcomes, _) = run_config(
        &db0,
        &registry,
        &txns,
        StrategyChoice::ForceTpl,
        ExecutorChoice::Serial,
    );
    assert!(
        ref_outcomes
            .iter()
            .any(|(_, o)| *o == TxnOutcome::Committed),
        "{name}: the reference run must commit something"
    );
    let replay_db = chunked_serial_replay(&db0, &registry, &sigs);
    assert!(
        replay_db == ref_db,
        "{name}: engine TPL reference must equal the raw chunked serial replay"
    );

    let strategies = [
        StrategyChoice::ForceTpl,
        StrategyChoice::ForcePart,
        StrategyChoice::ForceKset,
        StrategyChoice::Adaptive,
    ];
    let executors = [
        ExecutorChoice::Serial,
        ExecutorChoice::parallel(1),
        ExecutorChoice::parallel(2),
        ExecutorChoice::parallel(4),
        ExecutorChoice::parallel(8),
    ];
    for strategy in strategies {
        for executor in executors {
            let (db, outcomes, stats) = run_config(&db0, &registry, &txns, strategy, executor);
            assert_eq!(
                outcomes, ref_outcomes,
                "{name}: {strategy:?}/{executor:?} outcomes must match the serial TPL reference"
            );
            assert!(
                db == ref_db,
                "{name}: {strategy:?}/{executor:?} final state must match the serial TPL reference"
            );
            if strategy == StrategyChoice::Adaptive {
                let stats = stats.expect("adaptive engines expose decision stats");
                assert_eq!(
                    stats.total(),
                    (N / BULK) as u64,
                    "{name}: one decision per bulk"
                );
            } else {
                assert!(stats.is_none(), "fixed strategies record no decisions");
            }
        }
    }
}

#[test]
fn tm1_matrix_is_equivalent() {
    assert_matrix_equivalent("tm1", 11);
}

#[test]
fn tpcb_matrix_is_equivalent() {
    assert_matrix_equivalent("tpcb", 12);
}

#[test]
fn tpcc_matrix_is_equivalent() {
    assert_matrix_equivalent("tpcc", 13);
}

#[test]
fn ledger_matrix_is_equivalent() {
    assert_matrix_equivalent("ledger", 14);
}

/// Derive a structurally consistent bulk profile from five raw draws.
fn profile_from(size: usize, depth: u32, zero: usize, cross: usize, parts: usize) -> BulkProfile {
    let size = size.max(1);
    let depth = if size == 1 {
        0
    } else {
        depth.min(size as u32 - 1)
    };
    let zero = if depth == 0 {
        size
    } else {
        zero.clamp(1, size)
    };
    let cross = cross.min(size);
    let parts = parts.clamp(usize::from(cross < size), size - cross);
    BulkProfile {
        size,
        depth,
        zero_set_size: zero,
        cross_partition: cross,
        distinct_partitions: parts,
        distinct_types: 1,
        type_histogram: vec![size],
    }
}

fn fresh_selector() -> AdaptiveSelector {
    AdaptiveSelector::new(&EngineConfig::default(), AdaptiveConfig::default())
}

proptest! {
    /// The selector is a pure function of the profile stream: two fresh
    /// selectors fed the same stream make identical decisions (strategy,
    /// sizing hint, scores and switch flags alike).
    #[test]
    fn prop_selector_is_deterministic_for_a_profile_stream(
        draws in proptest::collection::vec(
            ((1usize..2048, 0u32..2048), (1usize..2048, 0usize..64, 1usize..2048)),
            1..24,
        ),
    ) {
        let profiles: Vec<BulkProfile> = draws
            .into_iter()
            .map(|((s, d), (z, c, p))| profile_from(s, d, z, c, p))
            .collect();
        let mut a = fresh_selector();
        let mut b = fresh_selector();
        for profile in &profiles {
            prop_assert_eq!(a.decide(profile), b.decide(profile));
        }
        prop_assert_eq!(a.stats_handle().snapshot(), b.stats_handle().snapshot());
    }

    /// A conflict-free bulk (depth 0, no cross-partition transactions) must
    /// never run the serial TPL loop — not even when hysteresis favours a
    /// TPL incumbent installed by a preceding hot-chain bulk.
    #[test]
    fn prop_never_tpl_for_a_conflict_free_bulk(
        chain_size in 2usize..2048,
        size in 1usize..2048,
        parts in 1usize..2048,
    ) {
        let mut selector = fresh_selector();
        // One long dependency chain first: TPL territory, installing a
        // serial incumbent for the hysteresis to defend.
        let chain = profile_from(chain_size, chain_size as u32 - 1, 1, 0, 1);
        selector.decide(&chain);
        let free = profile_from(size, 0, size, 0, parts);
        let decision = selector.decide(&free);
        prop_assert!(decision.strategy != StrategyKind::Tpl, "picked TPL: {:?}", decision);
        // The stateless one-shot resolution obeys the same invariant.
        let choice = gputx_core::adaptive::cost_based_choice(&EngineConfig::default(), &free);
        prop_assert!(choice != StrategyKind::Tpl, "one-shot resolution picked TPL");
    }
}

/// A seeded adaptive run replays bit-identically: same decision history,
/// same outcomes, same final state. Sampled over a handful of seeds on the
/// ledger (the workload whose phases actually exercise switching) using the
/// deterministic proptest RNG; kept out of the `proptest!` matrix because
/// each case builds and drains two full engines.
#[test]
fn prop_seeded_adaptive_runs_replay_identically() {
    use proptest::test_runner::TestRng;
    let mut rng = TestRng::deterministic();
    for _ in 0..6 {
        let seed = rng.next_u64();
        let n = rng.below(128, 512);
        let mut bundle = LedgerConfig::default()
            .with_accounts(512)
            .with_phase_len(64)
            .build();
        let txns = draw_stream(&mut bundle, seed, n);
        let run = || {
            run_config(
                &bundle.db,
                &bundle.registry,
                &txns,
                StrategyChoice::Adaptive,
                ExecutorChoice::Serial,
            )
        };
        let (db_a, out_a, stats_a) = run();
        let (db_b, out_b, stats_b) = run();
        let stats_a = stats_a.expect("adaptive stats");
        let stats_b = stats_b.expect("adaptive stats");
        assert_eq!(stats_a.history, stats_b.history, "seed {seed}");
        assert_eq!(stats_a, stats_b, "seed {seed}");
        assert_eq!(out_a, out_b, "seed {seed}");
        assert!(db_a == db_b, "seed {seed}");
    }
}
