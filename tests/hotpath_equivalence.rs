//! The plan-backed typed fast path is bit-identical to the legacy
//! `Value`/hash path.
//!
//! Each bundled workload (TM1, TPC-B, micro, TPC-C) can be built against either
//! storage-access API (`AccessApi::Legacy` / `AccessApi::Planned`). For the
//! same seed both variants receive the identical transaction stream; this
//! suite asserts that executing it produces identical per-transaction
//! outcomes, identical thread traces (byte-for-byte trace accounting) and an
//! identical final database state —
//!
//! * per transaction through the registry (serial, with and without a
//!   pre-built [`AccessPlan`]),
//! * through the full strategy path (`execute_bulk`, K-SET and PART) at
//!   1/2/4/8 worker threads,
//! * and for a plan gone *stale* (built against a snapshot whose indexes
//!   have since changed), which must transparently fall back to live probes.

use gputx_core::{execute_bulk, Bulk, EngineConfig, ExecContext, StrategyKind};
use gputx_exec::Executor;
use gputx_exec::{ExecPolicy, ExecutorChoice, ParallelExecutor, SerialExecutor};
use gputx_sim::Gpu;
use gputx_storage::{Database, Value};
use gputx_txn::{AccessPlan, ProcedureRegistry, TxnScratch, TxnSignature};
use gputx_workloads::{
    AccessApi, MicroConfig, MicroWorkload, Tm1Config, TpcbConfig, TpccConfig, WorkloadBundle,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Build the Legacy and Planned variants of one workload plus the identical
/// transaction stream both will execute.
fn variants(
    name: &str,
    n: usize,
    seed: u64,
) -> (WorkloadBundle, WorkloadBundle, Vec<TxnSignature>) {
    let build = |api: AccessApi| -> WorkloadBundle {
        match name {
            "tm1" => Tm1Config { scale_factor: 1 }.build_with_api(api),
            "tpcb" => TpcbConfig::default()
                .with_scale_factor(8)
                .build_with_api(api),
            "micro" => MicroWorkload::build_with_api(
                &MicroConfig::default().with_tuples(512).with_skew(0.3),
                api,
            ),
            // Single-partition so the partition-grouping tests apply; the
            // cross-partition planned path is covered by the workload's own
            // suite and the adaptive equivalence matrix.
            "tpcc" => TpccConfig::default()
                .with_warehouses(2)
                .single_partition_only()
                .build_with_api(api),
            other => panic!("unknown workload {other}"),
        }
    };
    let mut legacy = build(AccessApi::Legacy);
    let mut planned = build(AccessApi::Planned);
    assert!(
        legacy.db == planned.db,
        "{name}: the API choice must not change the populated database"
    );
    legacy.reseed(seed);
    planned.reseed(seed);
    let sigs = legacy.generate_signatures(n, 0);
    let planned_sigs = planned.generate_signatures(n, 0);
    let a: Vec<_> = sigs
        .iter()
        .map(|s| (s.id, s.ty, s.params.clone()))
        .collect();
    let b: Vec<_> = planned_sigs
        .iter()
        .map(|s| (s.id, s.ty, s.params.clone()))
        .collect();
    assert_eq!(a, b, "{name}: identical streams for identical seeds");
    (legacy, planned, sigs)
}

/// Serial, per-transaction: legacy execution vs planned execution with a
/// pre-built access plan. Traces, outcomes and undo counts must be equal
/// transaction by transaction; the final databases must be equal.
#[test]
fn serial_per_txn_traces_outcomes_and_state_match() {
    for name in ["tm1", "tpcb", "micro", "tpcc"] {
        let (legacy, planned, sigs) = variants(name, 1_500, 7);
        let mut legacy_db = legacy.db.clone();
        let legacy_out: Vec<_> = sigs
            .iter()
            .map(|sig| legacy.registry.execute(sig, &mut legacy_db))
            .collect();
        legacy_db.apply_insert_buffers();

        let plan = AccessPlan::build(&planned.registry, &planned.db, &sigs);
        let plan = (!plan.is_empty()).then_some(plan);
        if name == "tm1" || name == "tpcc" {
            assert!(plan.is_some(), "{name} procedures declare plan callbacks");
        }
        let mut planned_db = planned.db.clone();
        let mut scratch = TxnScratch::default();
        let planned_out: Vec<_> = sigs
            .iter()
            .map(|sig| {
                planned
                    .registry
                    .execute_planned(sig, &mut planned_db, plan.as_ref(), &mut scratch)
            })
            .collect();
        planned_db.apply_insert_buffers();

        assert_eq!(
            legacy_out, planned_out,
            "{name}: traces/outcomes/undo counts must be bit-identical"
        );
        assert!(
            legacy_db == planned_db,
            "{name}: final database state must be bit-identical"
        );
    }
}

/// Executor-level at 1/2/4/8 threads: the planned path (with plan) through
/// the parallel executor must match the legacy path through the serial
/// reference, including traces.
#[test]
fn parallel_executor_matches_legacy_serial_reference() {
    for name in ["tm1", "tpcb", "micro", "tpcc"] {
        let (legacy, planned, sigs) = variants(name, 1_200, 11);
        // One group per partition key, in timestamp order.
        let groups = |bundle: &WorkloadBundle, sigs: &[TxnSignature]| {
            let mut by_partition: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
            for (i, sig) in sigs.iter().enumerate() {
                let key = bundle
                    .registry
                    .partition_key(sig)
                    .expect("single-partition");
                by_partition.entry(key).or_default().push(i);
            }
            by_partition.into_values().collect::<Vec<_>>()
        };
        let group_idx = groups(&legacy, &sigs);
        let as_refs = |idx: &[Vec<usize>]| -> Vec<Vec<&TxnSignature>> {
            idx.iter()
                .map(|g| g.iter().map(|&i| &sigs[i]).collect())
                .collect()
        };
        let group_refs = as_refs(&group_idx);
        let policy = ExecPolicy::gpu(true);

        let mut legacy_db = legacy.db.clone();
        let legacy_out = SerialExecutor
            .run_groups(&mut legacy_db, &legacy.registry, &policy, &group_refs, None)
            .unwrap();
        legacy_db.apply_insert_buffers();

        let plan = AccessPlan::build(&planned.registry, &planned.db, &sigs);
        let plan = (!plan.is_empty()).then_some(plan);
        for threads in THREAD_COUNTS {
            let exec = ParallelExecutor::new(threads).with_min_parallel_txns(2);
            let mut db = planned.db.clone();
            let out = exec
                .run_groups(
                    &mut db,
                    &planned.registry,
                    &policy,
                    &group_refs,
                    plan.as_ref(),
                )
                .unwrap();
            db.apply_insert_buffers();
            assert!(
                db == legacy_db,
                "{name}@{threads} threads: final state must match the legacy serial reference"
            );
            assert_eq!(out.len(), legacy_out.len());
            for (g, (got, want)) in out.iter().zip(&legacy_out).enumerate() {
                for (a, b) in got.iter().zip(want) {
                    assert_eq!(a.id, b.id, "{name}@{threads} group {g}: id order");
                    assert_eq!(a.outcome, b.outcome, "{name}@{threads} txn {}", a.id);
                    assert_eq!(a.trace, b.trace, "{name}@{threads} txn {} trace", a.id);
                }
            }
        }
    }
}

/// Full strategy path (`execute_bulk`, K-SET + PART) at 1/2/4/8 threads:
/// the planned bundle must produce the same outcomes and final state as the
/// legacy bundle.
#[test]
fn execute_bulk_matches_across_apis_strategies_and_threads() {
    for name in ["tm1", "tpcb", "micro", "tpcc"] {
        let (legacy, planned, sigs) = variants(name, 1_000, 23);
        let run = |bundle: &WorkloadBundle, choice: ExecutorChoice, strategy: StrategyKind| {
            let mut db = bundle.db.clone();
            let mut gpu = Gpu::c1060();
            let config = EngineConfig {
                executor: choice,
                ..EngineConfig::default()
            };
            let mut ctx = ExecContext {
                gpu: &mut gpu,
                db: &mut db,
                registry: &bundle.registry,
                config: &config,
            };
            let out = execute_bulk(&mut ctx, strategy, &Bulk::new(sigs.clone()));
            (db, out.outcomes, out.committed, out.aborted)
        };
        for strategy in [StrategyKind::Kset, StrategyKind::Part] {
            let (ref_db, ref_outcomes, ref_committed, ref_aborted) =
                run(&legacy, ExecutorChoice::Serial, strategy);
            for threads in THREAD_COUNTS {
                let (db, outcomes, committed, aborted) =
                    run(&planned, ExecutorChoice::parallel(threads), strategy);
                assert_eq!(
                    outcomes, ref_outcomes,
                    "{name}/{strategy}@{threads}: outcomes must match"
                );
                assert_eq!((committed, aborted), (ref_committed, ref_aborted));
                assert!(
                    db == ref_db,
                    "{name}/{strategy}@{threads}: final state must match"
                );
            }
        }
    }
}

/// A plan built against a stale snapshot (indexes mutated since) must fall
/// back to live probes and still be bit-identical to unplanned execution —
/// the streaming pipeline's revalidation path.
#[test]
fn stale_plan_revalidates_and_falls_back_correctly() {
    let (_, planned, sigs) = variants("tm1", 800, 42);
    // The snapshot the plan is resolved against.
    let snapshot = planned.db.clone();
    let mut plan = AccessPlan::build(&planned.registry, &snapshot, &sigs);

    // The live database has advanced: an earlier bulk inserted (and indexed)
    // new call-forwarding rows.
    let mut live = planned.db.clone();
    let cf_t = live.table_id("call_forwarding").expect("table exists");
    for k in 0..20i64 {
        live.insert_indexed(
            cf_t,
            vec![
                Value::Int(k % 7),
                Value::Int(1 + k % 4),
                Value::Int(99),
                Value::Int(23),
                Value::Str(format!("{k:015}")),
            ],
        );
    }
    let stale = plan.revalidate(&live);
    assert!(stale > 0, "call-forwarding indexes must be detected stale");

    // Reference: unplanned execution on the live database.
    let mut ref_db = live.clone();
    let ref_out: Vec<_> = sigs
        .iter()
        .map(|sig| planned.registry.execute(sig, &mut ref_db))
        .collect();
    ref_db.apply_insert_buffers();

    // Stale-plan execution on the same live database.
    let mut db = live.clone();
    let mut scratch = TxnScratch::default();
    let out: Vec<_> = sigs
        .iter()
        .map(|sig| {
            planned
                .registry
                .execute_planned(sig, &mut db, Some(&plan), &mut scratch)
        })
        .collect();
    db.apply_insert_buffers();

    assert_eq!(out, ref_out, "stale entries must re-probe, not mis-resolve");
    assert!(db == ref_db, "final state must match unplanned execution");
}

/// Cross-check helper types stay exported: a registry built for one API must
/// report the same procedure names in the same order as the other.
#[test]
fn both_apis_register_identical_type_tables() {
    for name in ["tm1", "tpcb", "micro", "tpcc"] {
        let (legacy, planned, _) = variants(name, 1, 1);
        assert_eq!(legacy.registry.num_types(), planned.registry.num_types());
        for ty in 0..legacy.registry.num_types() as u32 {
            assert_eq!(
                legacy.registry.get(ty).name,
                planned.registry.get(ty).name,
                "{name}: type id {ty} must name the same procedure"
            );
            assert_eq!(
                legacy.registry.get(ty).two_phase,
                planned.registry.get(ty).two_phase
            );
        }
    }
}

/// The registries must be interchangeable from the engine's point of view:
/// declared read/write sets and partition keys agree on every signature.
#[test]
fn declared_sets_and_partition_keys_agree() {
    for name in ["tm1", "tpcb", "micro", "tpcc"] {
        let (legacy, planned, sigs) = variants(name, 400, 3);
        let db: &Database = &legacy.db;
        let check = |a: &ProcedureRegistry, b: &ProcedureRegistry| {
            for sig in &sigs {
                assert_eq!(a.read_write_set(sig, db), b.read_write_set(sig, db));
                assert_eq!(a.partition_key(sig), b.partition_key(sig));
            }
        };
        check(&legacy.registry, &planned.registry);
    }
}
