//! Chaos suite: seeded fault storms across WAL, wire and replication.
//!
//! The crash-window tests elsewhere prove each layer *fails cleanly*; this
//! suite installs a [`FaultPlan`] and proves the stack *recovers on its
//! own*:
//!
//! * **WAL storms heal deterministically** — the same seed injects the same
//!   append/fsync faults, the engine absorbs every one with a supervised
//!   checkpoint-heal, and two runs are bit-identical to each other and to
//!   the fault-free reference.
//! * **Budget exhaustion degrades, never corrupts** — with a zero heal
//!   budget the engine drops durability, keeps serving, and recovery still
//!   reproduces the last durable state.
//! * **Full-stack storm converges** — a reconnecting client, a supervised
//!   replica and a healing WAL all under one seeded storm: every reply
//!   resolves exactly once, commits are never lost or duplicated, and
//!   engine, mirror, replica and recovery agree on the final state.
//! * **Any seed converges (proptest)** — 64 seeded storms over engine +
//!   durability + supervised replication, each checked against a serial
//!   replay of the committed transactions.

use gputx_client::{Client, ClientConfig, TxnResult};
use gputx_core::{EngineBuilder, PipelineConfig, StrategyChoice};
use gputx_durability::recover;
use gputx_faults::{BackoffPolicy, FaultPlan, HealPolicy, WalState};
use gputx_replication::{ReplicaSupervisor, SupervisorConfig};
use gputx_server::{chaos_wrap, socket_pair, Duplex, Server};
use gputx_storage::Database;
use gputx_txn::{ProcedureRegistry, TxnSignature};
use gputx_workloads::{MicroConfig, MicroWorkload, Tm1Config, WorkloadBundle};
use proptest::prelude::*;
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(10);

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gputx-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn micro(tuples: u64, seed: u64) -> WorkloadBundle {
    let mut bundle = MicroWorkload::build(
        &MicroConfig::default()
            .with_tuples(tuples)
            .with_types(4)
            .with_skew(0.3),
    );
    bundle.reseed(seed);
    bundle
}

fn tm1() -> WorkloadBundle {
    let mut bundle = Tm1Config { scale_factor: 1 }.build();
    bundle.reseed(0xC4A0);
    bundle
}

/// Replay `bulks` serially (the paper's reference execution), applying the
/// insert buffers once per bulk exactly like the engine's commit.
fn serial_replay(
    db0: &Database,
    registry: &ProcedureRegistry,
    bulks: &[&[TxnSignature]],
) -> Database {
    let mut db = db0.clone();
    for bulk in bulks {
        for sig in *bulk {
            registry.execute(sig, &mut db);
        }
        db.apply_insert_buffers();
    }
    db
}

/// Fast backoff so chaos runs spend their time injecting, not sleeping.
fn fast_backoff(seed: u64) -> BackoffPolicy {
    BackoffPolicy {
        base: Duration::from_millis(1),
        max: Duration::from_millis(20),
        max_retries: 50,
        seed,
    }
}

// ---------------------------------------------------------------------------
// WAL-only storms: bit-deterministic heal.
// ---------------------------------------------------------------------------

/// Aggressive WAL-only fault rates with a small budget: several faults are
/// certain over a 10-bulk run, and the default heal budget (8) outlasts the
/// fault budget (5), so the run heals and never degrades.
fn wal_storm_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        wal_append_error: 0.25,
        wal_short_write: 0.15,
        wal_fsync_error: 0.15,
        ..FaultPlan::disabled()
    }
    .with_max_faults(5)
}

/// One seeded WAL-storm run: returns the final database plus the observed
/// (heals, faults_injected) so callers can assert determinism.
fn run_wal_storm(plan: Option<FaultPlan>, name: &str) -> (Database, u64, u64) {
    const BULKS: usize = 10;
    const PER_BULK: usize = 16;
    let bundle = micro(128, 0xD15C);
    let sigs = micro(128, 0xD15C).generate_signatures(BULKS * PER_BULK, 0);
    let dir = scratch_dir(name);
    let mut builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_durability(&dir);
    if let Some(plan) = plan {
        builder = builder.faults(plan);
    }
    let health = builder.health();
    let mut engine = builder.build();
    for chunk in sigs.chunks(PER_BULK) {
        for sig in chunk {
            engine.submit(sig.ty, sig.params.clone());
        }
        engine.execute_pending().expect("bulk executes");
    }
    let report = health.report();
    assert!(
        matches!(report.wal, WalState::Healthy | WalState::Healed),
        "a budgeted WAL storm must never degrade (got {:?})",
        report.wal
    );
    // Whatever the storm did, the log still replays to the live state.
    let recovered = recover(&dir).expect("recovery after WAL storm");
    assert!(
        recovered.db == *engine.db(),
        "recovery must reproduce the live state exactly"
    );
    let db = engine.db().clone();
    let _ = std::fs::remove_dir_all(&dir);
    (db, report.heals, report.faults_injected)
}

/// The same seed injects the same WAL faults at the same appends; the engine
/// heals through all of them; and the committed state is bit-identical to
/// the fault-free run.
#[test]
fn wal_fault_storm_heals_deterministically() {
    let seed = 0xBAD_5EED;
    let (db_a, heals_a, injected_a) = run_wal_storm(Some(wal_storm_plan(seed)), "wal-a");
    let (db_b, heals_b, injected_b) = run_wal_storm(Some(wal_storm_plan(seed)), "wal-b");
    assert!(injected_a > 0, "the storm must actually inject faults");
    assert!(heals_a >= 1, "injected WAL faults must trigger heals");
    assert_eq!(
        (heals_a, injected_a),
        (heals_b, injected_b),
        "same seed, same fault schedule, same heal count"
    );
    assert!(db_a == db_b, "same seed must produce bit-identical state");

    let (db_clean, heals_clean, injected_clean) = run_wal_storm(None, "wal-clean");
    assert_eq!((heals_clean, injected_clean), (0, 0));
    assert!(
        db_a == db_clean,
        "healed WAL faults must never change committed state"
    );
}

/// With the heal budget spent the engine degrades *visibly* instead of
/// panicking: reads and (policy-allowed) writes keep flowing, health says
/// `Degraded`, and recovery still reproduces the last durable state — here
/// the initial checkpoint, since the very first append failed.
#[test]
fn heal_budget_exhaustion_degrades_without_losing_the_engine() {
    const BULKS: usize = 4;
    const PER_BULK: usize = 16;
    let bundle = micro(96, 0xDE6A);
    let sigs = micro(96, 0xDE6A).generate_signatures(BULKS * PER_BULK, 0);
    let dir = scratch_dir("degrade");
    let plan = FaultPlan {
        seed: 7,
        wal_append_error: 1.0,
        ..FaultPlan::disabled()
    };
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_durability(&dir)
        .faults(plan)
        .heal_policy(HealPolicy {
            heal_budget: 0,
            writes_when_degraded: true,
        });
    let health = builder.health();
    let mut engine = builder.build();
    assert_eq!(health.report().wal, WalState::Healthy);

    for chunk in sigs.chunks(PER_BULK) {
        for sig in chunk {
            engine.submit(sig.ty, sig.params.clone());
        }
        engine
            .execute_pending()
            .expect("degraded engine keeps serving");
    }
    let report = health.report();
    assert_eq!(
        report.wal,
        WalState::Degraded,
        "budget 0 degrades immediately"
    );
    assert_eq!(report.heals, 0, "no heals were available to spend");

    // Degradation sheds durability, not correctness: the live state is still
    // the serial replay of everything committed.
    let bulks: Vec<&[TxnSignature]> = sigs.chunks(PER_BULK).collect();
    let reference = serial_replay(&bundle.db, &bundle.registry, &bulks);
    assert!(*engine.db() == reference);

    // The log was abandoned before any record landed, so recovery returns
    // exactly the initial checkpoint — stale but consistent, never torn.
    let recovered = recover(&dir).expect("recovery after degradation");
    assert_eq!(recovered.replayed, 0);
    assert!(recovered.db == bundle.db);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Full-stack storm: client wire + replication + WAL under one seeded plan.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Tally {
    committed: u64,
    aborted: u64,
    shed: u64,
    failed: u64,
    ambiguous: u64,
}

impl Tally {
    fn total(&self) -> u64 {
        self.committed + self.aborted + self.shed + self.failed + self.ambiguous
    }
}

/// One full-stack seeded storm. Faults hit the WAL (append/fsync), the
/// client wire (drop/corrupt/delay/reset) and the follower stream
/// (stall/kill); the client reconnects, the supervisor resyncs, the WAL
/// heals. After quiesce the run must converge: every reply resolved exactly
/// once, no commit lost or duplicated, and engine == mirror == replica ==
/// recovery.
fn run_full_storm(seed: u64, n: usize, max_faults: u64, name: &str) {
    let dir = scratch_dir(name);
    let mut bundle = tm1();
    let stream = bundle.generate(n);
    let plan = FaultPlan::storm(seed).with_max_faults(max_faults);
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_durability(&dir)
        .replicate()
        .faults(plan)
        .with_pipeline(
            PipelineConfig::default()
                .with_max_bulk_size(32)
                .with_max_wait_us(2_000),
        );
    let injector = builder.faults_injector().expect("plan installed");
    let health = builder.health();
    let hub = builder.hub().expect("replicate() creates the hub");
    let engine = builder.build_pipelined();

    let server = Arc::new(Server::new(engine.handle()));
    server.serve_health(health.clone());

    // Reconnecting client over a chaos-wrapped socket pair. Each reconnect
    // generation gets its own deterministic wire-fault stream; the raw
    // client end is stashed so the quiesce step can yank a connection whose
    // in-flight requests were dropped by the chaos plane.
    let current: Arc<Mutex<Option<UnixStream>>> = Arc::new(Mutex::new(None));
    let client = {
        let server = Arc::clone(&server);
        let injector = injector.clone();
        let current = Arc::clone(&current);
        let generation = AtomicU64::new(0);
        Client::with_connector(
            move || {
                let (server_end, client_end) = socket_pair()?;
                server.attach(server_end)?;
                *current.lock().expect("stash lock") = Some(client_end.try_clone()?);
                let g = generation.fetch_add(1, Ordering::Relaxed);
                let wire = injector.wire(&format!("client-{g}"));
                Ok(Box::new(chaos_wrap(client_end, wire)) as Box<dyn Duplex>)
            },
            ClientConfig {
                connect_timeout: None,
                read_timeout: Some(Duration::from_millis(25)),
                reconnect: Some(fast_backoff(seed)),
            },
        )
        .expect("first dial succeeds")
    };

    // Supervised replica over a chaos-wrapped follower stream.
    let mut sup = {
        let hub = hub.clone();
        let injector = injector.clone();
        let generation = AtomicU64::new(0);
        ReplicaSupervisor::start(
            move || {
                let (server_end, follower_end) = socket_pair()?;
                hub.attach(server_end)?;
                let g = generation.fetch_add(1, Ordering::Relaxed);
                let wire = injector.follower_wire(&format!("follower-{g}"));
                Ok(Box::new(chaos_wrap(follower_end, wire)) as Box<dyn Duplex>)
            },
            SupervisorConfig {
                backoff: fast_backoff(seed ^ 0xF0),
            },
        )
        .expect("supervisor starts")
    };

    // Drive the storm: every submit hands back a reply future, even when the
    // connection under it dies mid-flight.
    let replies: Vec<_> = stream
        .iter()
        .map(|(ty, params)| {
            client
                .submit(*ty, params.clone())
                .expect("submit always yields a reply under reconnect")
        })
        .collect();

    // Quiesce: stop injecting, then barrier on a ping — responses are FIFO,
    // so the pong proves the server resolved every submit it ever received.
    injector.disarm();
    client.ping().expect("post-storm ping");
    // Requests whose frames the chaos plane *dropped* never reached the
    // server and can never be answered; yank the connection so the reader
    // resolves them as ambiguous (`Disconnected`) rather than hanging.
    if replies.iter().any(|r| r.try_get().is_none()) {
        if let Some(stream) = current.lock().expect("stash lock").take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    let mut tally = Tally::default();
    for reply in &replies {
        match reply.wait() {
            Ok(TxnResult::Committed(_)) => tally.committed += 1,
            Ok(TxnResult::Aborted(_)) => tally.aborted += 1,
            Ok(TxnResult::QueueFull) => tally.shed += 1,
            Ok(TxnResult::BulkFailed(_)) => tally.failed += 1,
            Ok(TxnResult::Disconnected) => tally.ambiguous += 1,
            Ok(other) => panic!("submit resolved as {other:?}"),
            Err(e) => panic!("reconnecting client must not surface hard errors: {e}"),
        }
    }
    assert_eq!(tally.total(), n as u64, "every reply resolves exactly once");
    assert_eq!(
        client.unmatched_responses(),
        0,
        "every response matched the request that caused it"
    );

    // The yank resolves ambiguous replies while the server may still be
    // executing those submits: drain the pipeline and wait for the publish
    // stream to go quiet before reading the final LSN.
    engine.flush().expect("pipeline drains");
    let deadline = std::time::Instant::now() + WAIT;
    let published = loop {
        let before = hub.next_lsn();
        std::thread::sleep(Duration::from_millis(50));
        if hub.next_lsn() == before || std::time::Instant::now() >= deadline {
            break before;
        }
    };

    // The supervised replica converges on everything the primary published.
    assert!(
        sup.wait_applied(published, WAIT),
        "supervised replica must converge after the storm (lsn {published})"
    );

    // Health over the wire agrees with the in-process surfaces.
    let report = client.health().expect("health probe after the storm");
    assert_ne!(report.wal, WalState::Disabled, "durability is configured");
    assert_eq!(report.faults_injected, injector.injected());
    assert_eq!(report.repl_next_lsn, published);
    assert_eq!(report.heals, health.report().heals);

    let client_reconnects = client.reconnects();
    drop(client);
    server.stop();
    let sup_db = sup.snapshot_db().expect("converged replica snapshots");
    let sup_stats = sup.stats();
    sup.stop();
    let (final_db, stats) = engine.finish().expect("pipeline finishes cleanly");
    let mirror = hub.mirror_db();
    hub.stop();

    // Convergence chain: engine == mirror == supervised replica == recovery.
    assert!(mirror == final_db, "replication mirror == engine state");
    assert!(sup_db == final_db, "supervised replica == engine state");
    if health.report().wal != WalState::Degraded {
        let recovered = recover(&dir).expect("post-storm recovery");
        assert!(
            recovered.db == final_db,
            "recovery must replay to the engine's final state"
        );
    }

    // Commit accounting: an acked commit is real, and every commit beyond
    // the acked ones is accounted for by an ambiguous (dropped/orphaned)
    // submit — nothing lost, nothing duplicated.
    let engine_committed = stats.committed;
    assert!(
        engine_committed >= tally.committed,
        "an acked commit must have committed ({engine_committed} < {})",
        tally.committed
    );
    assert!(
        engine_committed <= tally.committed + tally.ambiguous,
        "commits beyond the acked set must all be ambiguous submits \
         ({engine_committed} > {} + {})",
        tally.committed,
        tally.ambiguous
    );
    assert!(
        engine_committed + stats.aborted <= n as u64,
        "the engine can never execute more transactions than were submitted"
    );
    assert!(!sup_stats.gave_up, "the supervisor must not give up");

    let _ = std::fs::remove_dir_all(&dir);
    // Keep the run observable when it fails later under a different seed.
    eprintln!(
        "storm seed={seed:#x}: {} committed / {} ambiguous / {} injected faults / \
         {client_reconnects} client reconnects / {} replica reconnects / {} heals",
        tally.committed,
        tally.ambiguous,
        injector.injected(),
        sup_stats.reconnects,
        health.report().heals
    );
}

/// Two fixed seeds, moderate scale: the deterministic storm the fast CI
/// tier runs on every push.
#[test]
fn chaos_storm_full_stack_converges() {
    run_full_storm(0x5701, 280, 48, "storm-a");
    run_full_storm(0xC4A05, 280, 48, "storm-b");
}

/// The long soak behind the CI chaos job (`--ignored`): more seeds, more
/// transactions, a bigger fault budget.
#[test]
#[ignore = "long soak; run by the CI chaos job via --ignored"]
fn chaos_storm_long_soak() {
    for (i, seed) in [0x1D5EED, 0x2D5EED, 0x3D5EED].into_iter().enumerate() {
        run_full_storm(seed, 1200, 160, &format!("soak-{i}"));
    }
}

// ---------------------------------------------------------------------------
// Property: any seeded storm converges to serial replay.
// ---------------------------------------------------------------------------

/// One proptest case: engine + durability + supervised replication under a
/// seed-derived storm (WAL faults plus follower stall/kill). The one-shot
/// engine acks everything it executes, so the final state must equal a
/// serial replay of *all* submitted transactions — and mirror, replica and
/// recovery must agree with it.
fn assert_seeded_storm_converges(seed: u64) {
    const BULKS: usize = 3;
    const PER_BULK: usize = 8;
    let bundle = micro(64, 0x5EED);
    let sigs = micro(64, 0x5EED).generate_signatures(BULKS * PER_BULK, 0);
    let dir = scratch_dir(&format!("prop-{seed:x}"));
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_durability(&dir)
        .replicate()
        .faults(FaultPlan::storm(seed).with_max_faults(12));
    let health = builder.health();
    let hub = builder.hub().expect("replicate() creates the hub");
    let injector = builder.faults_injector().expect("plan installed");
    let mut engine = builder.build();

    let mut sup = {
        let hub = hub.clone();
        let generation = AtomicU64::new(0);
        ReplicaSupervisor::start(
            move || {
                let (server_end, follower_end) = socket_pair()?;
                hub.attach(server_end)?;
                let g = generation.fetch_add(1, Ordering::Relaxed);
                let wire = injector.follower_wire(&format!("follower-{g}"));
                Ok(Box::new(chaos_wrap(follower_end, wire)) as Box<dyn Duplex>)
            },
            SupervisorConfig {
                backoff: fast_backoff(seed),
            },
        )
        .expect("supervisor starts")
    };

    for chunk in sigs.chunks(PER_BULK) {
        for sig in chunk {
            engine.submit(sig.ty, sig.params.clone());
        }
        engine
            .execute_pending()
            .expect("bulk executes under the storm");
    }

    // Everything the one-shot engine executed was acked, so the reference is
    // the serial replay of the full stream.
    let bulks: Vec<&[TxnSignature]> = sigs.chunks(PER_BULK).collect();
    let reference = serial_replay(&bundle.db, &bundle.registry, &bulks);
    assert!(
        *engine.db() == reference,
        "engine state must equal serial replay (seed {seed:#x})"
    );
    assert!(
        hub.mirror_db() == reference,
        "mirror must equal serial replay (seed {seed:#x})"
    );
    let published = hub.next_lsn();
    assert!(
        sup.wait_applied(published, WAIT),
        "supervised replica must converge (seed {seed:#x})"
    );
    let sup_db = sup.snapshot_db().expect("converged replica snapshots");
    assert!(
        sup_db == reference,
        "replica state must equal serial replay (seed {seed:#x})"
    );
    if health.report().wal != WalState::Degraded {
        let recovered = recover(&dir).expect("recovery under the storm");
        assert!(
            recovered.db == reference,
            "recovery must equal serial replay (seed {seed:#x})"
        );
    }
    sup.stop();
    hub.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// Any seeded [`FaultPlan::storm`] run converges to the serial replay of
    /// the acked transactions.
    #[test]
    fn prop_seeded_storms_converge_to_serial_replay(seed in 0u64..u64::MAX) {
        assert_seeded_storm_converges(seed);
    }
}
