//! End-to-end tests of the network front door (gputx-server + gputx-client).
//!
//! * **Wire == in-process** — a seeded TM1 / micro stream submitted through
//!   one wire connection (socket pair or loopback TCP) must commit the exact
//!   same final database state and per-transaction outcomes as submitting the
//!   same stream into `PipelinedGpuTx` directly. A single connection
//!   preserves submission order, so with size-based bulk boundaries the two
//!   runs are bit-identical.
//! * **Failure is data** — a malformed frame gets an `Error` response and a
//!   connection close (other connections unaffected); a client that vanishes
//!   mid-bulk loses only its responses, never its admitted transactions; a
//!   `no_wait` overload sheds with `QueueFull` and the committed state equals
//!   a serial replay of exactly the admitted subset.
//! * **Shutdown** — dropping the engine while wire submitters are live
//!   resolves their in-flight replies as `Disconnected` instead of hanging
//!   (the `SubmitGate` regression).
//! * **Codec fuzz** — arbitrary garbled/byte-chopped request streams yield
//!   clean per-connection errors, never a panic and never a committed
//!   partial request (proptest).

use gputx_client::{bench_run, Client, ClientConfig, TxnResult};
use gputx_core::config::StrategyChoice;
use gputx_core::{EngineBuilder, PipelineConfig, PipelinedGpuTx};
use gputx_server::proto::{
    self, encode_request, read_frame, write_frame, FrameError, Request, Response,
};
use gputx_server::{socket_pair, Duplex, Server, ServerConfig};
use gputx_storage::wire::crc32;
use gputx_storage::{Database, Value};
use gputx_txn::{TxnSignature, TxnTypeId};
use gputx_workloads::{MicroConfig, MicroWorkload, Tm1Config, WorkloadBundle};
use std::io::Write;
use std::time::Duration;

const BULK: usize = 256;

fn tm1() -> WorkloadBundle {
    let mut bundle = Tm1Config { scale_factor: 1 }.build();
    bundle.reseed(0xBEEF);
    bundle
}

fn micro() -> WorkloadBundle {
    let mut bundle = MicroWorkload::build(
        &MicroConfig::default()
            .with_tuples(512)
            .with_types(4)
            .with_skew(0.4),
    );
    bundle.reseed(0xF00D);
    bundle
}

/// Pipeline config with size-based bulk boundaries only (the huge deadline
/// never fires), so two runs over the same stream close identical bulks.
fn deterministic_config() -> PipelineConfig {
    PipelineConfig::default()
        .with_max_bulk_size(BULK)
        .with_max_wait_us(60_000_000)
}

fn engine_for(bundle: &WorkloadBundle, pipeline: PipelineConfig) -> PipelinedGpuTx {
    EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_pipeline(pipeline)
        .build_pipelined()
}

/// Reference: the same stream submitted in-process, no wire. Returns the
/// final database and each transaction's `(txn_id, committed?)`.
fn in_process_run(
    bundle: &WorkloadBundle,
    stream: &[(TxnTypeId, Vec<Value>)],
) -> (Database, Vec<(u64, bool)>) {
    let engine = engine_for(bundle, deterministic_config());
    let tickets: Vec<_> = stream
        .iter()
        .map(|(ty, params)| {
            engine
                .submit(*ty, params.clone())
                .expect("in-process submit")
        })
        .collect();
    // Close any trailing partial bulk now. Submission is synchronous, so the
    // flush lands after every transaction and the bulk boundaries stay
    // deterministic — the wait below never sits out the deadline.
    engine.flush().expect("flush");
    let outcomes = tickets
        .iter()
        .map(|t| {
            let (id, outcome) = t.wait().expect("pipeline stays healthy");
            (id, outcome.is_committed())
        })
        .collect();
    let (db, _stats) = engine.finish().expect("clean finish");
    (db, outcomes)
}

/// The same stream submitted through one wire connection.
fn wire_run(
    bundle: &WorkloadBundle,
    stream: &[(TxnTypeId, Vec<Value>)],
    connect: impl FnOnce(&Server) -> Client,
) -> (Database, Vec<(u64, bool)>) {
    let engine = engine_for(bundle, deterministic_config());
    let server = Server::new(engine.handle());
    let client = connect(&server);
    let replies: Vec<_> = stream
        .iter()
        .map(|(ty, params)| client.submit(*ty, params.clone()).expect("wire submit"))
        .collect();
    let outcomes = replies
        .iter()
        .map(|r| match r.wait().expect("reply resolves") {
            TxnResult::Committed(id) => (id, true),
            TxnResult::Aborted(id) => (id, false),
            other => panic!("unexpected wire resolution {other:?}"),
        })
        .collect();
    assert_eq!(client.unmatched_responses(), 0);
    drop(client);
    server.stop();
    let (db, _stats) = engine.finish().expect("clean finish");
    (db, outcomes)
}

fn assert_wire_matches_in_process(mut bundle: WorkloadBundle, n: usize, tcp: bool) {
    // An exact multiple of BULK: the final bulk closes by size on both sides,
    // so neither run sits out the (deliberately unreachable) deadline.
    assert_eq!(n % BULK, 0, "stream length must be a multiple of BULK");
    let stream = bundle.generate(n);
    let (db_ref, out_ref) = in_process_run(&bundle, &stream);
    let (db_wire, out_wire) = wire_run(&bundle, &stream, |server| {
        if tcp {
            let addr = server.listen("127.0.0.1:0").expect("bind loopback");
            Client::connect(addr).expect("connect")
        } else {
            let (server_end, client_end) = socket_pair().expect("socketpair");
            server.attach(server_end).expect("attach");
            Client::from_duplex(client_end).expect("client")
        }
    });
    assert_eq!(out_wire, out_ref, "per-transaction outcomes must match");
    assert!(
        db_wire == db_ref,
        "wire and in-process final database states must be bit-identical"
    );
    assert!(
        out_ref.iter().any(|(_, committed)| *committed),
        "the stream must commit something for the comparison to mean anything"
    );
}

#[test]
fn wire_tm1_matches_in_process_over_socket_pair() {
    assert_wire_matches_in_process(tm1(), 3 * BULK, false);
}

#[test]
fn wire_micro_matches_in_process_over_socket_pair() {
    assert_wire_matches_in_process(micro(), 2 * BULK, false);
}

#[test]
fn wire_tm1_matches_in_process_over_loopback_tcp() {
    assert_wire_matches_in_process(tm1(), 2 * BULK, true);
}

/// A malformed frame is answered with a connection-scoped `Error` response
/// and a close — while a well-formed connection to the same server keeps
/// working.
#[test]
fn malformed_frame_gets_error_response_then_close() {
    let bundle = tm1();
    let engine = engine_for(&bundle, deterministic_config());
    let server = Server::new(engine.handle());

    // Raw connection: one clean frame, then a frame whose payload is garbled
    // after the CRC was computed (a corrupted-in-flight frame).
    let (server_end, mut raw) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let payload = encode_request(&Request::Ping { request_id: 9 });
    write_frame(&mut raw, &payload).expect("first frame is fine");
    let mut bad = Vec::new();
    bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bad.extend_from_slice(&crc32(&payload).to_le_bytes());
    let mut garbled = payload.clone();
    *garbled.last_mut().expect("non-empty payload") ^= 0xFF;
    bad.extend_from_slice(&garbled);
    raw.write_all(&bad).expect("write garbled frame");
    // First response: the Pong. Second: the connection-scoped Error.
    let pong = read_frame(&mut raw, proto::MAX_FRAME_LEN)
        .expect("read pong")
        .expect("pong present");
    assert_eq!(
        proto::decode_response(&pong).expect("pong decodes"),
        Response::Pong { request_id: 9 }
    );
    let err = read_frame(&mut raw, proto::MAX_FRAME_LEN)
        .expect("read error response")
        .expect("error present");
    match proto::decode_response(&err).expect("error decodes") {
        Response::Error { request_id: 0, .. } => {}
        other => panic!("expected connection-scoped Error, got {other:?}"),
    }
    // Then EOF: the server closed the bad connection.
    assert!(matches!(
        read_frame(&mut raw, proto::MAX_FRAME_LEN),
        Ok(None) | Err(FrameError::Io(_)) | Err(FrameError::Corrupt(_))
    ));

    // A fresh, well-formed connection still works.
    let (server_end, client_end) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let client = Client::from_duplex(client_end).expect("client");
    client.ping().expect("healthy connection still served");
    drop(client);
    server.stop();
    assert_eq!(server.stats().protocol_errors, 1);
    engine.finish().expect("clean finish");
}

/// A client that disconnects mid-bulk (without ever reading responses) loses
/// only its responses: every transaction it submitted was admitted and
/// commits, bit-identical to an in-process run of the same stream.
#[test]
fn mid_bulk_disconnect_preserves_admitted_transactions() {
    let mut bundle = tm1();
    // 300 is deliberately not a multiple of BULK: the tail is mid-bulk when
    // the client vanishes.
    let stream = bundle.generate(300);
    let (db_ref, _) = in_process_run(&bundle, &stream);

    let engine = engine_for(&bundle, deterministic_config());
    let server = Server::new(engine.handle());
    let (server_end, client_end) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let client = Client::from_duplex(client_end).expect("client");
    for (ty, params) in &stream {
        client.submit(*ty, params.clone()).expect("wire submit");
    }
    // Vanish without reading a single response. The socket-pair transport
    // delivers everything written before the close, then EOF.
    drop(client);
    server.stop();
    let (db_wire, stats) = engine.finish().expect("clean finish");
    assert_eq!(
        stats.committed + stats.aborted,
        300,
        "every admitted transaction must still resolve"
    );
    assert!(
        db_wire == db_ref,
        "disconnect must not lose or duplicate admitted transactions"
    );
}

/// Overdrive a tiny admission queue with `no_wait` submits: some are shed
/// with `QueueFull`, and the final state equals a serial replay of exactly
/// the admitted (non-shed) subset, in submission order.
#[test]
fn queue_full_shedding_commits_exactly_the_admitted_subset() {
    // Micro is update-only, so the serial replay is insensitive to where the
    // engine's bulk boundaries fell.
    let mut bundle = MicroWorkload::build(
        &MicroConfig::default()
            .with_tuples(256)
            .with_types(4)
            .with_compute(8)
            .with_skew(0.5),
    );
    bundle.reseed(0xA11CE);
    let stream = bundle.generate(2_500);

    let engine = engine_for(
        &bundle,
        // The replay is boundary-insensitive, so a short deadline is fine —
        // it closes the final partial bulk without a long sit.
        PipelineConfig::default()
            .with_max_bulk_size(128)
            .with_max_wait_us(2_000)
            .with_queue_depth(1),
    );
    let server = Server::new(engine.handle());
    let (server_end, client_end) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let client = Client::from_duplex(client_end).expect("client");
    let replies: Vec<_> = stream
        .iter()
        .map(|(ty, params)| {
            client
                .submit_nowait(*ty, params.clone())
                .expect("wire submit")
        })
        .collect();
    // The responses reveal the admitted subset, in submission order.
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for (reply, (ty, params)) in replies.iter().zip(&stream) {
        match reply.wait().expect("reply resolves") {
            TxnResult::Committed(_) | TxnResult::Aborted(_) => admitted.push((*ty, params.clone())),
            TxnResult::QueueFull => shed += 1,
            other => panic!("unexpected resolution {other:?}"),
        }
    }
    drop(client);
    server.stop();
    let (db_wire, _stats) = engine.finish().expect("clean finish");
    assert!(shed > 0, "the tiny queue must shed under overdrive");
    assert!(!admitted.is_empty(), "some transactions must get through");

    // Serial replay of exactly the admitted subset.
    let mut db_ref = bundle.db.clone();
    for (i, (ty, params)) in admitted.iter().enumerate() {
        let sig = TxnSignature::new(i as u64, *ty, params.clone());
        bundle.registry.execute(&sig, &mut db_ref);
    }
    db_ref.apply_insert_buffers();
    assert!(
        db_wire == db_ref,
        "committed state must be the admitted subset, nothing more or less"
    );
}

/// Dropping the engine while a wire connection is still submitting resolves
/// that connection's in-flight replies as `Disconnected` — promptly, instead
/// of blocking engine teardown on the remote submitter (the `SubmitGate`
/// regression, seen through the wire).
#[test]
fn engine_drop_with_live_wire_connection_resolves_disconnected() {
    let bundle = micro();
    let engine = engine_for(&bundle, deterministic_config());
    let server = Server::new(engine.handle());
    let (server_end, client_end) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let client = Client::from_duplex(client_end).expect("client");

    let before = client
        .submit(0, vec![Value::Int(1)])
        .expect("submit while engine lives");
    // Tear the engine down mid-flight. Must return promptly even though the
    // server still holds a live SubmitHandle.
    let start = std::time::Instant::now();
    drop(engine);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "engine teardown must not block on live wire submitters"
    );
    // The pre-drop submit resolves (committed by the drain, or disconnected
    // if the gate closed first) — it must not hang.
    let first = before.wait().expect("pre-drop reply resolves");
    assert!(
        matches!(
            first,
            TxnResult::Committed(_) | TxnResult::Aborted(_) | TxnResult::Disconnected
        ),
        "unexpected pre-drop resolution {first:?}"
    );
    // Post-drop submits resolve as Disconnected — the wire stays responsive.
    let after = client
        .submit(0, vec![Value::Int(2)])
        .expect("the wire itself is still up");
    assert_eq!(
        after.wait().expect("post-drop reply"),
        TxnResult::Disconnected
    );
    client.ping().expect("connection still serves pings");
    drop(client);
    server.stop();
}

/// `attach()` on a stopped server is refused outright and the stream is
/// closed, so the would-be client sees EOF instead of a silent half-open
/// socket.
#[test]
fn attach_after_stop_is_refused() {
    let bundle = micro();
    let engine = engine_for(&bundle, deterministic_config());
    let server = Server::new(engine.handle());
    server.stop();
    let (server_end, _client_end) = socket_pair().expect("socketpair");
    let err = server.attach(server_end).expect_err("attach after stop");
    assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);
}

/// `stop()` racing an in-flight `attach()` must never orphan a connection:
/// either the attach is refused (stream closed, client sees EOF) or it
/// registers in time for `stop()` to close and join it. Before the
/// stopping-gate in `attach_to`, `stop()` could drain the connection list
/// between `attach`'s thread spawns and its registration — leaving live
/// reader/responder threads whose client then hung forever.
#[test]
fn stop_racing_attach_never_orphans_the_client() {
    use std::io::Read;
    for _ in 0..32 {
        let bundle = micro();
        let engine = engine_for(&bundle, deterministic_config());
        let server = std::sync::Arc::new(Server::new(engine.handle()));
        let (server_end, client_end) = socket_pair().expect("socketpair");
        let attacher = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || server.attach(server_end))
        };
        let stopper = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || server.stop())
        };
        let attached = attacher.join().expect("attach thread");
        stopper.join().expect("stop thread");
        // Whatever the interleaving, the client end must reach EOF promptly;
        // a read that times out here is exactly the orphaned-connection bug.
        client_end
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut buf = [0u8; 1];
        match (&client_end).read(&mut buf) {
            Ok(0) => {} // clean EOF
            Ok(_) => panic!("server sent an unsolicited frame"),
            Err(e) => assert!(
                e.kind() != std::io::ErrorKind::WouldBlock
                    && e.kind() != std::io::ErrorKind::TimedOut,
                "client read timed out — connection orphaned (attach: {attached:?})"
            ),
        }
    }
}

/// Closed-loop harness over socket pairs: the bench path itself must be
/// lossless (every submit resolves exactly once) and observe commits.
#[test]
fn bench_harness_socket_pair_run_is_lossless() {
    let mut bundle = tm1();
    let type_names: Vec<String> = (0..bundle.registry.num_types())
        .map(|t| bundle.registry.get(t as TxnTypeId).name.clone())
        .collect();
    let streams: Vec<_> = (0..2).map(|_| bundle.generate(512)).collect();
    let engine = engine_for(
        &bundle,
        PipelineConfig::default()
            .with_max_bulk_size(128)
            .with_max_wait_us(2_000),
    );
    let server = Server::new(engine.handle());
    let report = bench_run::run_bench(
        &bench_run::BenchConfig {
            connections: 2,
            mode: bench_run::BenchMode::Closed,
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(400),
            max_in_flight: 32,
        },
        &type_names,
        &streams,
        &|_| {
            let (server_end, client_end) = socket_pair()?;
            server.attach(server_end)?;
            Client::from_duplex(client_end)
        },
    )
    .expect("harness runs");
    server.stop();
    engine.finish().expect("clean finish");
    assert!(report.is_lossless(), "harness lost a resolution");
    assert!(report.committed() > 0, "harness must commit transactions");
}

/// A transport whose `shutdown_both` is a no-op: models peers/transports
/// where close cannot unblock a reader stuck in `read`. The client's
/// Drop-join guarantee must then come from the read timeout + closing flag.
struct NoShutdown(std::os::unix::net::UnixStream);

impl std::io::Read for NoShutdown {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for NoShutdown {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

impl Duplex for NoShutdown {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Duplex>> {
        Ok(Box::new(NoShutdown(self.0.try_clone()?)))
    }
    fn shutdown_both(&self) -> std::io::Result<()> {
        Ok(())
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.0.set_read_timeout(timeout)
    }
}

/// Regression: dropping a client whose server died without a FIN (and whose
/// transport cannot be shut down) must not hang. The reader polls the
/// closing flag on read timeouts, so `close`/`Drop` always join.
#[test]
fn client_drop_joins_even_without_fin_or_shutdown() {
    let (server_end, client_end) = socket_pair().expect("socketpair");
    let config = ClientConfig {
        read_timeout: Some(Duration::from_millis(50)),
        ..ClientConfig::default()
    };
    let client = Client::from_duplex_with(NoShutdown(client_end), config).expect("client");
    // The peer is silent and never closes; without the timeout the reader
    // would block in `read` forever and the no-op shutdown could not
    // unblock it.
    let start = std::time::Instant::now();
    drop(client);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "client drop must join the reader promptly"
    );
    drop(server_end);
}

/// A reconnect-enabled client survives its connection being reset out from
/// under it: read-only pings retry onto a fresh connection, later submits
/// flow there, and nothing is ever retransmitted (unmatched stays 0).
#[test]
fn reconnecting_client_survives_connection_reset() {
    use std::sync::{Arc, Mutex};
    let mut bundle = tm1();
    let stream = bundle.generate(64);
    let engine = engine_for(
        &bundle,
        PipelineConfig::default()
            .with_max_bulk_size(8)
            .with_max_wait_us(500),
    );
    let server = Arc::new(Server::new(engine.handle()));
    // The connector stashes a handle to the latest client-side stream so the
    // test can yank the wire.
    let current: Arc<Mutex<Option<std::os::unix::net::UnixStream>>> = Arc::new(Mutex::new(None));
    let client = Client::with_connector(
        {
            let server = Arc::clone(&server);
            let current = Arc::clone(&current);
            move || {
                let (server_end, client_end) = socket_pair()?;
                server.attach(server_end)?;
                *current.lock().expect("stash lock") = Some(client_end.try_clone()?);
                Ok(Box::new(client_end) as Box<dyn Duplex>)
            }
        },
        ClientConfig {
            connect_timeout: None,
            read_timeout: Some(Duration::from_millis(25)),
            reconnect: Some(gputx_faults::BackoffPolicy::default()),
        },
    )
    .expect("initial connect");
    assert_eq!(client.reconnects(), 0);

    // Work flows on the first connection.
    let (ty0, params0) = stream[0].clone();
    let first = client.submit(ty0, params0).expect("pre-reset submit");
    client.ping().expect("pre-reset barrier");
    assert!(matches!(
        first.wait().expect("pre-reset reply"),
        TxnResult::Committed(_) | TxnResult::Aborted(_)
    ));

    // Yank the wire. The reset lands on a quiesced connection, so no
    // in-flight submit is ambiguous here.
    current
        .lock()
        .expect("stash lock")
        .as_ref()
        .expect("connected at least once")
        .shutdown(std::net::Shutdown::Both)
        .expect("reset");

    // Read-only ping heals across the outage.
    client.ping().expect("ping survives the reset");
    assert!(client.reconnects() >= 1, "a reconnect must have happened");

    // Submits commit on the fresh connection. Right after the reset a
    // submit can race the reader noticing EOF and resolve `Disconnected`
    // (ambiguous, never retransmitted) — later ones land.
    let mut committed = false;
    for (ty, params) in stream.iter().skip(1) {
        match client
            .submit(*ty, params.clone())
            .expect("post-reset submit")
            .wait()
            .expect("post-reset reply")
        {
            TxnResult::Committed(_) => {
                committed = true;
                break;
            }
            TxnResult::Aborted(_) | TxnResult::Disconnected => continue,
            other => panic!("unexpected post-reset resolution {other:?}"),
        }
    }
    assert!(committed, "a submit must commit after the reconnect");
    assert_eq!(client.unmatched_responses(), 0);
    drop(client);
    server.stop();
    engine.finish().expect("clean finish");
}

/// The wire `Health` request: unwired servers answer the canonical unwired
/// report; a server given the engine's health surface reports live WAL
/// state.
#[test]
fn health_report_served_over_wire() {
    let bundle = tm1();
    let dir = std::env::temp_dir().join(format!("gputx-net-health-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_durability(&dir)
        .with_pipeline(deterministic_config());
    let health = builder.health();
    let engine = builder.build_pipelined();
    let server = Server::new(engine.handle());

    let (server_end, client_end) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let client = Client::from_duplex(client_end).expect("client");

    // Nothing served yet: the canonical unwired report.
    let unwired = client.health().expect("health answered");
    assert_eq!(unwired, gputx_faults::HealthReport::unwired());

    server.serve_health(health);
    let report = client.health().expect("health answered");
    assert_eq!(report.wal, gputx_faults::WalState::Healthy);
    assert_eq!(report.heals, 0);
    assert_eq!(report.faults_injected, 0);

    drop(client);
    server.stop();
    engine.finish().expect("clean finish");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The connection cap answers the excess accept with a typed Error frame
/// (so the peer learns why) and frees capacity once a connection closes.
#[test]
fn connection_cap_refuses_excess_with_typed_error() {
    let bundle = tm1();
    let engine = engine_for(&bundle, deterministic_config());
    let server = Server::with_config(
        engine.handle(),
        ServerConfig {
            max_connections: Some(1),
            idle_timeout: None,
        },
    );
    let (s1, c1) = socket_pair().expect("socketpair");
    server
        .attach(s1)
        .expect("first connection is under the cap");
    let (s2, mut c2) = socket_pair().expect("socketpair");
    let err = server
        .attach(s2)
        .expect_err("second connection is over the cap");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    // The refused peer got a typed Error frame, then EOF.
    let payload = read_frame(&mut c2, proto::MAX_FRAME_LEN)
        .expect("refusal frame")
        .expect("frame before close");
    match proto::decode_response(&payload).expect("server speaks the protocol") {
        Response::Error {
            request_id: 0,
            message,
        } => assert!(
            message.contains("capacity"),
            "unexpected refusal: {message}"
        ),
        other => panic!("expected a connection-scoped Error, got {other:?}"),
    }
    assert!(matches!(
        read_frame(&mut c2, proto::MAX_FRAME_LEN),
        Ok(None)
    ));
    assert_eq!(server.stats().refused, 1);

    // The under-cap connection still serves.
    let mut client = Client::from_duplex(c1).expect("client");
    client.ping().expect("under-cap connection serves");
    client.close();
    drop(client);

    // Capacity frees once the server notices the close; re-attach succeeds
    // within a bounded retry window.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let attached = loop {
        let (s3, c3) = socket_pair().expect("socketpair");
        match server.attach(s3) {
            Ok(()) => break Some(c3),
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("capacity never freed: {e}"),
        }
    };
    let client = Client::from_duplex(attached.expect("reattached")).expect("client");
    client.ping().expect("freed capacity serves");
    drop(client);
    server.stop();
    engine.finish().expect("clean finish");
}

/// The idle reaper closes connections that stop producing requests, and the
/// server keeps serving fresh ones.
#[test]
fn idle_reaper_closes_stale_connections() {
    let bundle = tm1();
    let engine = engine_for(&bundle, deterministic_config());
    let server = Server::with_config(
        engine.handle(),
        ServerConfig {
            max_connections: None,
            idle_timeout: Some(Duration::from_millis(50)),
        },
    );
    let (server_end, client_end) = socket_pair().expect("socketpair");
    server.attach(server_end).expect("attach");
    let client = Client::from_duplex(client_end).expect("client");
    client.ping().expect("live connection serves");

    // Go idle; the reaper shuts the connection down.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().idle_reaped == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().idle_reaped, 1, "idle connection reaped");
    drop(client);

    // A fresh connection still serves.
    let (s2, c2) = socket_pair().expect("socketpair");
    server.attach(s2).expect("attach after reap");
    let client = Client::from_duplex(c2).expect("client");
    client.ping().expect("fresh connection after reap");
    drop(client);
    server.stop();
    engine.finish().expect("clean finish");
}

mod codec_fuzz {
    use super::*;
    use proptest::prelude::*;

    /// splitmix64, locally seeded per case.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    proptest! {
        /// Pure codec fuzz: feeding arbitrary bytes through the frame reader
        /// yields frames or clean errors — never a panic, and every decoded
        /// request round-trips.
        #[test]
        fn garbled_byte_streams_never_panic_the_codec(seed in 0u64..u64::MAX / 2, len in 0usize..4_096) {
            let mut state = seed;
            let bytes: Vec<u8> = (0..len).map(|_| mix(&mut state) as u8).collect();
            let mut cursor = &bytes[..];
            loop {
                match read_frame(&mut cursor, proto::MAX_FRAME_LEN) {
                    Ok(Some(payload)) => {
                        // Astronomically unlikely from random bytes, but if a
                        // frame survives the CRC it must decode or error
                        // cleanly.
                        let _ = proto::decode_request(&payload);
                    }
                    Ok(None) => break,
                    Err(FrameError::Corrupt(_)) | Err(FrameError::Io(_)) => break,
                }
            }
        }

        /// Server-level fuzz: a valid request stream chopped at an arbitrary
        /// byte yields responses for exactly the complete frames (plus at
        /// most one connection-scoped Error), never a panic, and never a
        /// committed partial request.
        #[test]
        fn chopped_request_streams_commit_only_complete_frames(seed in 0u64..u64::MAX / 2, frac in 0.0f64..1.0) {
            let mut state = seed;
            let mut bundle = micro();
            bundle.reseed(seed);
            let stream = bundle.generate(20);
            // Serialize 20 valid submit frames, note each frame's end offset.
            let mut wire_bytes = Vec::new();
            let mut frame_ends = Vec::new();
            for (i, (ty, params)) in stream.iter().enumerate() {
                let req = Request::Submit {
                    request_id: i as u64 + 1,
                    txn_type: *ty,
                    params: params.clone(),
                    no_wait: false,
                };
                write_frame(&mut wire_bytes, &encode_request(&req)).expect("vec write");
                frame_ends.push(wire_bytes.len());
            }
            // Chop anywhere; optionally garble one byte after the cut point
            // region to also exercise CRC rejection on the tail.
            let cut = ((wire_bytes.len() as f64) * frac) as usize;
            let mut sent = wire_bytes[..cut].to_vec();
            let garble = mix(&mut state) % 4 == 0 && !sent.is_empty();
            if garble {
                let at = (mix(&mut state) as usize) % sent.len();
                sent[at] ^= 0x55;
            }

            let engine = engine_for(&bundle, PipelineConfig::default()
                .with_max_bulk_size(8)
                .with_max_wait_us(500));
            let server = Server::new(engine.handle());
            let (server_end, mut raw) = socket_pair().expect("socketpair");
            server.attach(server_end).expect("attach");
            raw.write_all(&sent).expect("write chopped stream");
            raw.shutdown(std::net::Shutdown::Write).expect("half-close");
            // Read whatever comes back until the server closes.
            let mut resolved = Vec::new();
            let mut conn_errors = 0usize;
            while let Ok(Some(payload)) = read_frame(&mut raw, proto::MAX_FRAME_LEN) {
                match proto::decode_response(&payload).expect("server speaks the protocol") {
                    Response::Error { request_id: 0, .. } => conn_errors += 1,
                    Response::Committed { request_id, .. }
                    | Response::Aborted { request_id, .. }
                    | Response::Disconnected { request_id } => resolved.push(request_id),
                    other => panic!("unexpected response {other:?}"),
                }
            }
            server.stop();
            let (_db, stats) = engine.finish().expect("server never panics, engine stays healthy");
            // Responses are FIFO: resolved ids are exactly 1..=k for some
            // prefix k of the complete frames — never a partial frame, never
            // a hole, never more than one connection error.
            prop_assert!(conn_errors <= 1);
            let expect: Vec<u64> = (1..=resolved.len() as u64).collect();
            prop_assert_eq!(&resolved, &expect);
            let max_complete = frame_ends.iter().filter(|&&e| e <= cut).count();
            prop_assert!(resolved.len() <= max_complete);
            if !garble {
                // Nothing garbled: every complete frame was admitted.
                prop_assert_eq!(resolved.len(), max_complete);
                prop_assert_eq!(stats.committed + stats.aborted, max_complete as u64);
            } else {
                prop_assert!((stats.committed + stats.aborted) as usize <= max_complete);
            }
        }
    }
}
