//! HTAP consistency gate: analytical scans running concurrently with the
//! pipelined engine must observe *exactly* a committed bulk prefix.
//!
//! Every test drives real ingest (TM1) while scanner threads cut
//! bulk-boundary snapshots, then hard-verifies the snapshots against a
//! serial replay of the retained redo records:
//!
//! * a scan under load equals the same scan replayed serially against the
//!   frozen committed prefix (count, bit-exact f64 sum, full group-by);
//! * a snapshot survives engine churn — later commits, shutdown and drop —
//!   with every cell intact;
//! * snapshots cut and dropped mid-scan never corrupt later bulks: the
//!   engine's final state is the serial replay of all retained records;
//! * a replica serving `snapshot_db()` answers the same scans with the same
//!   bits as the primary's final snapshot (replica offload).

use gputx_analytics::{
    count_rows, group_by_i64, sum_f64, AnalyticsConfig, GroupRow, Predicate, ScanOptions,
    ScanSource, SnapshotHandle,
};
use gputx_core::config::StrategyChoice;
use gputx_core::EngineBuilder;
use gputx_storage::catalog::TableId;
use gputx_storage::Database;
use gputx_txn::TxnSignature;
use gputx_workloads::Tm1Config;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_TXNS: usize = 4_096;
const MAX_BULK: usize = 128;
const WAIT: Duration = Duration::from_secs(30);

fn tm1_stream(seed: u64) -> (gputx_workloads::WorkloadBundle, Vec<TxnSignature>) {
    let mut bundle = Tm1Config { scale_factor: 1 }.build();
    bundle.reseed(seed);
    let sigs = bundle.generate_signatures(N_TXNS, 0);
    (bundle, sigs)
}

/// The scan every test runs: count + bit-exact sum + group-by over the TM1
/// subscriber table (group key `bit_1`, aggregate `vlr_location`).
#[derive(Debug, PartialEq, Clone)]
struct ScanResult {
    count: u64,
    sum_bits: u64,
    groups: Vec<GroupRow>,
}

fn scan<S: ScanSource + ?Sized>(src: &S, table: TableId, opts: ScanOptions) -> ScanResult {
    ScanResult {
        count: count_rows(src, table, &Predicate::All, opts),
        sum_bits: sum_f64(src, table, 4, &Predicate::All, opts).to_bits(),
        groups: group_by_i64(src, table, 2, 4, &Predicate::All, opts),
    }
}

fn subscriber(db: &Database) -> TableId {
    db.table_id("subscriber")
        .expect("TM1 has a subscriber table")
}

/// Serially replay `records` retained records onto `seed` and return the
/// reference database the snapshot at that bulk count must equal.
fn replay_prefix(
    retained: &[gputx_durability::BulkLogRecord],
    seed: &Database,
    records: usize,
) -> Database {
    let mut db = seed.clone();
    for record in &retained[..records] {
        record.clone().replay_into(&mut db);
    }
    db
}

#[test]
fn scan_under_load_matches_serial_replay() {
    let (bundle, sigs) = tm1_stream(7);
    let seed = bundle.db.clone();
    let table = subscriber(&seed);
    let builder = EngineBuilder::new(seed.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_max_bulk_size(MAX_BULK)
        .with_max_wait_us(2_000)
        .analytics_with(AnalyticsConfig::default().with_retained_records());
    let session = builder.analytics_session().unwrap();
    let engine = builder.build_pipelined();

    let done = Arc::new(AtomicBool::new(false));
    let scanner = {
        let session = session.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut observed: Vec<(u64, ScanResult)> = Vec::new();
            loop {
                let finished = done.load(Ordering::Acquire);
                let snap = session.snapshot();
                observed.push((
                    snap.records_applied(),
                    scan(&snap, table, ScanOptions::parallel(4)),
                ));
                if finished {
                    return observed;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    for sig in &sigs {
        engine.submit(sig.ty, sig.params.clone()).unwrap();
    }
    let (final_db, stats) = engine.finish().unwrap();
    done.store(true, Ordering::Release);
    let observed = scanner.join().unwrap();
    assert!(
        observed.len() >= 2,
        "the scanner must observe the stream at least twice"
    );

    // Hard gate: each concurrent parallel scan equals the serial scan of
    // the serially replayed committed prefix it froze.
    let retained = session.retained_records();
    assert_eq!(retained.len() as u64, stats.bulks());
    for (records, result) in &observed {
        let reference = replay_prefix(&retained, &seed, *records as usize);
        let serial = scan(&reference, table, ScanOptions::sequential());
        assert_eq!(
            *result, serial,
            "scan at {records} bulks diverged from its serial replay"
        );
    }
    // And the final cut is the engine's own state, cell for cell.
    let final_snap = session.snapshot();
    assert_eq!(final_snap.records_applied(), retained.len() as u64);
    final_snap.check_against(&final_db).unwrap();
}

#[test]
fn snapshot_survives_engine_churn_and_shutdown() {
    let (bundle, sigs) = tm1_stream(11);
    let seed = bundle.db.clone();
    let table = subscriber(&seed);
    let builder = EngineBuilder::new(seed.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_max_bulk_size(MAX_BULK)
        .with_max_wait_us(2_000)
        .analytics_with(AnalyticsConfig::default().with_retained_records());
    let session = builder.analytics_session().unwrap();
    let engine = builder.build_pipelined();

    // Commit some prefix, cut a snapshot, remember what it said.
    let (head, tail) = sigs.split_at(N_TXNS / 4);
    for sig in head {
        engine.submit(sig.ty, sig.params.clone()).unwrap();
    }
    assert!(session.wait_applied(1, WAIT), "at least one bulk commits");
    let snap = session.snapshot();
    let frozen_records = snap.records_applied();
    let before = scan(&snap, table, ScanOptions::parallel(4));

    // Churn: the engine keeps committing bulks on top, then shuts down.
    for sig in tail {
        engine.submit(sig.ty, sig.params.clone()).unwrap();
    }
    let (_final_db, stats) = engine.finish().unwrap();
    assert!(stats.bulks() > frozen_records, "churn happened");

    // The old handle still answers bit-identically after churn + shutdown,
    // and still equals its own serial replay — even with the session gone.
    let retained = session.retained_records();
    drop(session);
    let after = scan(&snap, table, ScanOptions::sequential());
    assert_eq!(before, after, "snapshot changed under engine churn");
    let reference = replay_prefix(&retained, &seed, frozen_records as usize);
    snap.check_against(&reference).unwrap();
}

#[test]
fn snapshots_dropped_mid_scan_do_not_corrupt_later_bulks() {
    let (bundle, sigs) = tm1_stream(13);
    let seed = bundle.db.clone();
    let table = subscriber(&seed);
    let builder = EngineBuilder::new(seed.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_max_bulk_size(MAX_BULK)
        .with_max_wait_us(2_000)
        .analytics_with(AnalyticsConfig::default().with_retained_records());
    let session = builder.analytics_session().unwrap();
    let engine = builder.build_pipelined();

    // Scanner that cuts snapshots and abandons them mid-use: each iteration
    // starts a scan on a fresh cut and drops the handle (and a clone of it)
    // without finishing a full pass.
    let done = Arc::new(AtomicBool::new(false));
    let scanner = {
        let session = session.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut cuts = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap: SnapshotHandle = session.snapshot();
                let clone = snap.clone();
                // Touch a little data, then drop both handles mid-"scan".
                if snap.num_rows(table) > 0 {
                    let _ = snap.get_i64(table, 0, 0);
                    let _ = clone.is_live(table, 0);
                }
                drop(snap);
                drop(clone);
                cuts += 1;
            }
            cuts
        })
    };
    for sig in &sigs {
        engine.submit(sig.ty, sig.params.clone()).unwrap();
    }
    let (final_db, stats) = engine.finish().unwrap();
    done.store(true, Ordering::Release);
    let cuts = scanner.join().unwrap();
    assert!(cuts > 0, "the scanner must have cut snapshots");
    assert_eq!(stats.committed + stats.aborted, N_TXNS as u64);

    // Later bulks were not corrupted: the final engine state is exactly the
    // serial replay of every retained record, and a fresh final cut agrees.
    let retained = session.retained_records();
    let reference = replay_prefix(&retained, &seed, retained.len());
    assert!(
        reference == final_db,
        "dropped snapshots must not corrupt committed state"
    );
    session.snapshot().check_against(&final_db).unwrap();
}

#[test]
fn replica_offload_scans_match_primary_snapshot() {
    use gputx_replication::Replica;
    use gputx_server::socket_pair;

    let (bundle, sigs) = tm1_stream(17);
    let seed = bundle.db.clone();
    let table = subscriber(&seed);
    let builder = EngineBuilder::new(seed.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_max_bulk_size(MAX_BULK)
        .with_max_wait_us(2_000)
        .replicate()
        .analytics();
    let session = builder.analytics_session().unwrap();
    let hub = builder.hub().unwrap();
    let (server_end, follower_end) = socket_pair().unwrap();
    hub.attach(server_end).unwrap();
    let replica = Replica::start(follower_end).unwrap();
    assert!(replica.wait_synced(WAIT));
    let engine = builder.build_pipelined();

    for sig in &sigs {
        engine.submit(sig.ty, sig.params.clone()).unwrap();
    }
    let (final_db, stats) = engine.finish().unwrap();
    assert!(replica.wait_applied(stats.bulks(), WAIT));
    let replica_db = replica.snapshot_db().unwrap();
    hub.stop();

    // The same operators, the same bits: local snapshot, replica state and
    // the primary's own database all agree.
    let final_snap = session.snapshot();
    final_snap.check_against(&final_db).unwrap();
    let local = scan(&final_snap, table, ScanOptions::parallel(4));
    let offloaded = scan(&replica_db, table, ScanOptions::parallel(4));
    let primary = scan(&final_db, table, ScanOptions::sequential());
    assert_eq!(local, offloaded, "replica-offload scan diverged");
    assert_eq!(local, primary, "snapshot scan diverged from primary state");
    let start = Instant::now();
    let _ = scan(&replica_db, table, ScanOptions::parallel(2));
    assert!(start.elapsed() < WAIT);
}
