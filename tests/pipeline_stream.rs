//! End-to-end tests of the streaming pipelined engine.
//!
//! * **Equivalence** — over the same seeded transaction stream with the same
//!   bulk boundaries, `PipelinedGpuTx` must commit the exact same final
//!   database state (and per-transaction outcomes) as the one-shot
//!   `execute_bulk` path, at 1 and 4 worker threads, for the K-SET and PART
//!   strategies, on TM1 and the micro benchmark.
//! * **Shutdown/drain semantics** — submitting after `shutdown()` errors,
//!   `flush()` commits a partial bulk, and no ticket is dropped under
//!   backpressure (seeded stress across 1/2/4/8 worker threads).

use gputx_core::config::StrategyChoice;
use gputx_core::{execute_bulk, Bulk, EngineBuilder, EngineConfig, ExecContext, StrategyKind};
use gputx_exec::{ExecutorChoice, PipelineError, Ticket};
use gputx_sim::Gpu;
use gputx_storage::{Database, Value};
use gputx_txn::{ProcedureRegistry, TxnId, TxnOutcome, TxnSignature};
use gputx_workloads::{MicroConfig, MicroWorkload, Tm1Config};

const BULK: usize = 256;

fn tm1_stream(n: usize, seed: u64) -> (Database, ProcedureRegistry, Vec<TxnSignature>) {
    let mut bundle = Tm1Config { scale_factor: 1 }.build();
    bundle.reseed(seed);
    let sigs = bundle.generate_signatures(n, 0);
    (bundle.db.clone(), bundle.registry.clone(), sigs)
}

fn micro_stream(n: usize, seed: u64) -> (Database, ProcedureRegistry, Vec<TxnSignature>) {
    let mut bundle = MicroWorkload::build(&MicroConfig::default().with_tuples(512).with_skew(0.3));
    bundle.reseed(seed);
    let sigs = bundle.generate_signatures(n, 0);
    (bundle.db.clone(), bundle.registry.clone(), sigs)
}

/// One-shot reference: the stream cut into `BULK`-sized bulks through
/// `execute_bulk` on the serial executor.
fn one_shot(
    db0: &Database,
    registry: &ProcedureRegistry,
    sigs: &[TxnSignature],
    strategy: StrategyKind,
) -> (Database, Vec<(TxnId, TxnOutcome)>) {
    let mut db = db0.clone();
    let mut gpu = Gpu::c1060();
    let config = EngineConfig::default();
    let mut outcomes = Vec::with_capacity(sigs.len());
    for chunk in sigs.chunks(BULK) {
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, strategy, &Bulk::new(chunk.to_vec()));
        outcomes.extend(out.outcomes);
    }
    (db, outcomes)
}

/// Streaming run: the same stream submitted in order with the same bulk-size
/// threshold (the huge deadline guarantees identical bulk boundaries).
fn pipelined(
    db0: &Database,
    registry: &ProcedureRegistry,
    sigs: &[TxnSignature],
    strategy: StrategyChoice,
    threads: usize,
) -> (Database, Vec<(TxnId, TxnOutcome)>) {
    let engine = EngineBuilder::new(db0.clone(), registry.clone())
        .with_strategy(strategy)
        .with_max_bulk_size(BULK)
        .with_max_wait_us(60_000_000)
        .with_executor(if threads == 1 {
            ExecutorChoice::Serial
        } else {
            ExecutorChoice::parallel(threads)
        })
        .build_pipelined();
    let tickets: Vec<Ticket> = sigs
        .iter()
        .map(|sig| {
            engine
                .submit(sig.ty, sig.params.clone())
                .expect("stream accepted")
        })
        .collect();
    let (db, stats) = engine.finish().expect("pipeline stays healthy");
    assert_eq!(stats.transactions(), sigs.len() as u64);
    let outcomes = tickets
        .iter()
        .map(|t| t.wait().expect("ticket resolves"))
        .collect();
    (db, outcomes)
}

fn assert_stream_equivalence(
    name: &str,
    db0: &Database,
    registry: &ProcedureRegistry,
    sigs: &[TxnSignature],
) {
    for (strategy, choice) in [
        (StrategyKind::Kset, StrategyChoice::ForceKset),
        (StrategyKind::Part, StrategyChoice::ForcePart),
    ] {
        let (ref_db, ref_outcomes) = one_shot(db0, registry, sigs, strategy);
        for threads in [1usize, 4] {
            let (db, outcomes) = pipelined(db0, registry, sigs, choice, threads);
            assert_eq!(
                outcomes, ref_outcomes,
                "{name}/{strategy}: outcomes must match at {threads} thread(s)"
            );
            assert!(
                db == ref_db,
                "{name}/{strategy}: final state must match one-shot at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn pipelined_equals_one_shot_on_tm1() {
    let (db0, registry, sigs) = tm1_stream(1_200, 0xfeed);
    assert_stream_equivalence("tm1", &db0, &registry, &sigs);
}

#[test]
fn pipelined_equals_one_shot_on_micro() {
    let (db0, registry, sigs) = micro_stream(1_500, 0xbeef);
    assert_stream_equivalence("micro", &db0, &registry, &sigs);
}

#[test]
fn submit_after_shutdown_errors() {
    let (db0, registry, _) = micro_stream(1, 1);
    let mut engine = EngineBuilder::new(db0, registry).build_pipelined();
    engine
        .submit(0, vec![Value::Int(0)])
        .expect("running engine accepts");
    engine.shutdown();
    assert_eq!(
        engine.submit(0, vec![Value::Int(0)]).unwrap_err(),
        PipelineError::ShutDown
    );
    assert_eq!(engine.flush().unwrap_err(), PipelineError::ShutDown);
    engine.shutdown(); // idempotent
    let stats = engine.stats().expect("stats available after shutdown");
    assert_eq!(stats.transactions(), 1);
}

#[test]
fn flush_commits_a_partial_bulk() {
    let (db0, registry, sigs) = micro_stream(10, 2);
    let engine = EngineBuilder::new(db0, registry)
        .with_max_bulk_size(1_000_000)
        .with_max_wait_us(60_000_000)
        .build_pipelined();
    let tickets: Vec<Ticket> = sigs
        .iter()
        .map(|s| engine.submit(s.ty, s.params.clone()).unwrap())
        .collect();
    assert!(
        tickets.iter().all(|t| t.try_get().is_none()),
        "nothing may commit before the flush (size and deadline are huge)"
    );
    engine.flush().expect("flush drains the partial bulk");
    for t in &tickets {
        assert!(matches!(t.try_get(), Some(Ok(_))));
    }
    let (_, stats) = engine.finish().unwrap();
    assert_eq!(stats.closes.by_flush, 1);
    assert_eq!(stats.transactions(), 10);
}

/// An analytics snapshot held across pipeline shutdown: every outstanding
/// ticket still resolves, the snapshot stays readable (bit-identically)
/// after the engine and the session are gone, and no drop order of
/// {engine, session, snapshot} deadlocks the stage threads.
#[test]
fn snapshot_held_across_pipeline_shutdown() {
    use gputx_analytics::{count_rows, sum_i64, Predicate, ScanOptions};

    let (db0, registry, sigs) = tm1_stream(600, 0x5a17);
    let table = db0.table_id("subscriber").expect("TM1 subscriber table");
    let builder = EngineBuilder::new(db0, registry)
        .with_strategy(StrategyChoice::ForceKset)
        .with_max_bulk_size(64)
        .with_max_wait_us(2_000)
        .analytics();
    let session = builder.analytics_session().expect("session attached");
    let engine = builder.build_pipelined();

    // Submit a first batch and cut a snapshot while the pipeline is hot.
    let (head, tail) = sigs.split_at(sigs.len() / 2);
    let mut tickets: Vec<Ticket> = head
        .iter()
        .map(|s| engine.submit(s.ty, s.params.clone()).unwrap())
        .collect();
    assert!(
        session.wait_applied(1, std::time::Duration::from_secs(30)),
        "a bulk must commit before the cut"
    );
    let snap = session.snapshot();
    let frozen = snap.records_applied();
    let opts = ScanOptions::sequential();
    let count_before = count_rows(&snap, table, &Predicate::All, opts);
    let sum_before = sum_i64(&snap, table, 4, &Predicate::All, opts);

    // Keep committing on top of the held snapshot, then shut down with the
    // snapshot still alive. Shutdown must resolve every ticket.
    tickets.extend(
        tail.iter()
            .map(|s| engine.submit(s.ty, s.params.clone()).unwrap()),
    );
    let (final_db, stats) = engine.finish().expect("pipeline healthy");
    for t in &tickets {
        t.wait()
            .expect("every ticket resolves despite the held snapshot");
    }
    assert_eq!(stats.transactions(), sigs.len() as u64);
    assert!(stats.bulks() > frozen, "later bulks committed over the cut");

    // The held snapshot is untouched by the churn and the shutdown...
    assert_eq!(snap.records_applied(), frozen);
    assert_eq!(
        count_rows(&snap, table, &Predicate::All, opts),
        count_before
    );
    assert_eq!(sum_i64(&snap, table, 4, &Predicate::All, opts), sum_before);
    // ...while a fresh cut from the outliving session sees the final state.
    let final_snap = session.snapshot();
    assert_eq!(final_snap.records_applied(), stats.bulks());
    final_snap.check_against(&final_db).unwrap();

    // No drop order deadlocks: session before snapshots, then the handles.
    drop(session);
    assert_eq!(snap.records_applied(), frozen);
    drop(final_snap);
    drop(snap);
}

/// Seeded soak: a conflict-heavy micro stream pushed through tiny bulks and a
/// tiny admission queue (constant backpressure) at 1/2/4/8 worker threads.
/// Every ticket must resolve, the commit counts must add up, and the final
/// state must equal the sequential replay at every thread count.
#[test]
fn soak_backpressure_drops_no_tickets_across_thread_counts() {
    let n = 800usize;
    let (db0, registry, sigs) = micro_stream(n, 0x50a4);

    // Sequential replay reference.
    let mut seq_db = db0.clone();
    for sig in &sigs {
        registry.execute(sig, &mut seq_db);
    }
    seq_db.apply_insert_buffers();

    for threads in [1usize, 2, 4, 8] {
        let engine = EngineBuilder::new(db0.clone(), registry.clone())
            .with_strategy(StrategyChoice::ForceKset)
            .with_max_bulk_size(32)
            .with_max_wait_us(200)
            .with_queue_depth(8)
            .with_executor(if threads == 1 {
                ExecutorChoice::Serial
            } else {
                ExecutorChoice::parallel(threads)
            })
            .build_pipelined();
        let tickets: Vec<Ticket> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| {
                if i % 97 == 0 {
                    engine.flush().expect("mid-stream flush");
                }
                engine.submit(sig.ty, sig.params.clone()).expect("accepted")
            })
            .collect();
        let (db, stats) = engine.finish().expect("pipeline healthy");
        assert_eq!(tickets.len(), n);
        for t in &tickets {
            t.wait().expect("no ticket may be dropped or failed");
        }
        assert_eq!(stats.transactions(), n as u64, "{threads} threads");
        assert_eq!(stats.committed + stats.aborted, n as u64);
        assert_eq!(stats.failed, 0);
        assert!(
            db == seq_db,
            "soak at {threads} thread(s): final state must equal sequential replay"
        );
    }
}
