//! Cross-crate integration tests: Definition 1 correctness of every execution
//! strategy on every workload, and agreement between the GPU engine, the CPU
//! counterpart and a plain sequential replay.

use gputx_core::{execute_bulk, Bulk, EngineConfig, ExecContext, StrategyKind};
use gputx_cpu::engine::CpuEngine;
use gputx_sim::Gpu;
use gputx_storage::Database;
use gputx_txn::{ProcedureRegistry, TxnSignature};
use gputx_workloads::{
    MicroConfig, MicroWorkload, Tm1Config, TpcbConfig, TpccConfig, WorkloadBundle,
};

/// Sequentially execute a bulk in timestamp order (the reference of
/// Definition 1).
fn sequential_replay(
    db: &Database,
    registry: &ProcedureRegistry,
    sigs: &[TxnSignature],
) -> Database {
    let mut out = db.clone();
    let mut sorted: Vec<&TxnSignature> = sigs.iter().collect();
    sorted.sort_by_key(|s| s.id);
    for sig in sorted {
        registry.execute(sig, &mut out);
    }
    out.apply_insert_buffers();
    out
}

fn all_workloads() -> Vec<WorkloadBundle> {
    vec![
        MicroWorkload::build(
            &MicroConfig::default()
                .with_types(4)
                .with_compute(1)
                .with_tuples(2_000)
                .with_skew(0.3),
        ),
        TpcbConfig::default().with_scale_factor(4).build(),
        Tm1Config { scale_factor: 1 }.build(),
        TpccConfig::default().with_warehouses(2).build(),
    ]
}

#[test]
fn every_strategy_matches_sequential_replay_on_every_workload() {
    for mut bundle in all_workloads() {
        let sigs = bundle.generate_signatures(1200, 0);
        let reference = sequential_replay(&bundle.db, &bundle.registry, &sigs);
        for strategy in [StrategyKind::Tpl, StrategyKind::Part, StrategyKind::Kset] {
            let mut db = bundle.db.clone();
            let mut gpu = Gpu::c1060();
            let config = EngineConfig::default();
            let mut ctx = ExecContext {
                gpu: &mut gpu,
                db: &mut db,
                registry: &bundle.registry,
                config: &config,
            };
            let out = execute_bulk(&mut ctx, strategy, &Bulk::new(sigs.clone()));
            assert_eq!(out.transactions, sigs.len());
            assert!(
                db == reference,
                "workload {} with {strategy} diverged from the sequential replay",
                bundle.name
            );
        }
    }
}

#[test]
fn relaxed_mode_also_matches_sequential_replay() {
    for mut bundle in all_workloads() {
        let sigs = bundle.generate_signatures(800, 0);
        let reference = sequential_replay(&bundle.db, &bundle.registry, &sigs);
        for strategy in [StrategyKind::Tpl, StrategyKind::Part, StrategyKind::Kset] {
            let mut db = bundle.db.clone();
            let mut gpu = Gpu::c1060();
            let config = EngineConfig::default().with_relaxed_timestamps(true);
            let mut ctx = ExecContext {
                gpu: &mut gpu,
                db: &mut db,
                registry: &bundle.registry,
                config: &config,
            };
            execute_bulk(&mut ctx, strategy, &Bulk::new(sigs.clone()));
            assert!(
                db == reference,
                "workload {} with relaxed {strategy} diverged from the sequential replay",
                bundle.name
            );
        }
    }
}

#[test]
fn cpu_engine_matches_gpu_engine_results() {
    for mut bundle in all_workloads() {
        let sigs = bundle.generate_signatures(1000, 0);
        // GPU side.
        let mut gpu_db = bundle.db.clone();
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default();
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut gpu_db,
            registry: &bundle.registry,
            config: &config,
        };
        execute_bulk(&mut ctx, StrategyKind::Kset, &Bulk::new(sigs.clone()));
        // CPU side.
        let mut cpu_db = bundle.db.clone();
        CpuEngine::xeon_quad_core().execute_bulk(&mut cpu_db, &bundle.registry, &sigs);
        assert!(
            gpu_db == cpu_db,
            "workload {}: GPU and CPU engines disagree on the final database",
            bundle.name
        );
    }
}

#[test]
fn splitting_into_multiple_bulks_preserves_the_result() {
    let mut bundle = TpcbConfig::default().with_scale_factor(4).build();
    let sigs = bundle.generate_signatures(2000, 0);
    let reference = sequential_replay(&bundle.db, &bundle.registry, &sigs);

    let mut db = bundle.db.clone();
    let mut gpu = Gpu::c1060();
    let config = EngineConfig::default();
    for chunk in sigs.chunks(257) {
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &bundle.registry,
            config: &config,
        };
        execute_bulk(&mut ctx, StrategyKind::Part, &Bulk::new(chunk.to_vec()));
    }
    assert!(db == reference, "chunked bulk execution diverged");
}
