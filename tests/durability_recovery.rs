//! Crash-recovery tests: checkpoint + WAL replay reproduces the committed
//! state bit-identically.
//!
//! Three angles:
//!
//! * **Equivalence** — run logged bulks on TM1 and micro through the serial
//!   and parallel(4) executors; `recover()` must equal the live final
//!   database exactly (`Database` equality compares every table cell, delete
//!   flag and index entry).
//! * **Pipeline** — the streaming engine's execution stage is the group
//!   commit point; after a clean shutdown, recovery equals the pipeline's
//!   final state.
//! * **Torn tail (property)** — chop the WAL at an arbitrary byte offset;
//!   recovery must yield exactly the longest committed-bulk prefix, with the
//!   torn-tail flag set iff the cut landed inside a frame.

use gputx_core::config::StrategyChoice;
use gputx_core::EngineBuilder;
use gputx_durability::{recover, DurabilityConfig, FsyncPolicy};
use gputx_exec::ExecutorChoice;
use gputx_storage::Database;
use gputx_workloads::{MicroConfig, MicroWorkload, Tm1Config, WorkloadBundle};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Fresh scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gputx-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `n_txns` of the bundle's workload through a durability-enabled
/// one-shot engine in bulks of `bulk_size`. Returns the final live database
/// plus the state snapshot after every bulk (index 0 = initial state).
fn run_logged_bulks(
    bundle: &mut WorkloadBundle,
    executor: ExecutorChoice,
    dir: &Path,
    fsync: FsyncPolicy,
    n_txns: usize,
    bulk_size: usize,
) -> (Database, Vec<Database>) {
    let mut engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_bulk_size(bulk_size)
        .with_executor(executor)
        .with_durability_config(DurabilityConfig::at(dir).with_fsync(fsync))
        .build();
    for (ty, params) in bundle.generate(n_txns) {
        engine.submit(ty, params);
    }
    let mut states = vec![engine.db().clone()];
    while engine.execute_pending().is_some() {
        states.push(engine.db().clone());
    }
    (engine.db().clone(), states)
}

#[test]
fn recovery_equals_live_state_on_tm1_and_micro_serial_and_parallel() {
    let cases: Vec<(&str, WorkloadBundle)> = vec![
        ("tm1", Tm1Config { scale_factor: 1 }.build()),
        (
            "micro",
            MicroWorkload::build(&MicroConfig::default().with_tuples(2048).with_skew(0.3)),
        ),
    ];
    for (name, mut bundle) in cases {
        for executor in [ExecutorChoice::Serial, ExecutorChoice::parallel(4)] {
            bundle.reseed(7);
            let dir = scratch_dir(&format!("equiv-{name}-{executor}"));
            let (live, _) =
                run_logged_bulks(&mut bundle, executor, &dir, FsyncPolicy::PerBulk, 2048, 512);
            let recovery = recover(&dir).expect("recover");
            assert_eq!(
                recovery.replayed, 4,
                "{name}/{executor}: one record per bulk"
            );
            assert!(!recovery.torn_tail, "{name}/{executor}: clean shutdown");
            assert!(
                recovery.db == live,
                "{name}/{executor}: recovered state must equal the live state"
            );
        }
    }
}

#[test]
fn checkpoint_mid_run_truncates_log_and_recovery_resumes() {
    let mut bundle = MicroWorkload::build(&MicroConfig::default().with_tuples(1024));
    let dir = scratch_dir("mid-ckpt");
    let mut engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_bulk_size(256)
        .with_durability(&dir)
        .build();
    for (ty, params) in bundle.generate(1024) {
        engine.submit(ty, params);
    }
    engine.execute_pending().expect("bulk 1");
    engine.execute_pending().expect("bulk 2");
    assert!(engine.checkpoint(), "durability is enabled");
    engine.execute_pending().expect("bulk 3");
    engine.execute_pending().expect("bulk 4");
    let live = engine.db().clone();
    let stats = engine.durability_stats().expect("stats present");
    assert_eq!(
        stats.records, 2,
        "checkpoint truncated the first two records"
    );
    drop(engine);
    let recovery = recover(&dir).expect("recover");
    assert_eq!(recovery.replayed, 2, "only post-checkpoint bulks replay");
    assert_eq!(recovery.next_lsn, 4);
    assert!(recovery.db == live);
}

#[test]
fn pipelined_engine_recovers_bit_identical_after_clean_shutdown() {
    let mut bundle = Tm1Config { scale_factor: 1 }.build();
    let dir = scratch_dir("pipeline");
    let engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .with_strategy(StrategyChoice::ForceKset)
        .with_durability_config(DurabilityConfig::at(&dir).with_fsync(FsyncPolicy::EveryN(2)))
        .with_executor(ExecutorChoice::parallel(2))
        .with_max_bulk_size(256)
        .with_max_wait_us(10_000_000)
        .build_pipelined();
    for (ty, params) in bundle.generate(1500) {
        engine.submit(ty, params).expect("pipeline accepts");
    }
    let (db, stats) = engine.finish().expect("pipeline stays healthy");
    assert!(stats.bulks() >= 6);
    // Clean shutdown synced the log even under EveryN batching (the writer's
    // drop flushes), so every bulk's record is recoverable.
    let recovery = recover(&dir).expect("recover");
    assert_eq!(recovery.replayed, stats.bulks());
    assert!(!recovery.torn_tail);
    assert!(
        recovery.db == db,
        "pipeline recovery must equal the final streamed state"
    );
}

/// Shared fixture for the torn-tail property: one logged run of the micro
/// workload, the per-bulk state snapshots, the raw WAL bytes and the byte
/// offset where each record's frame ends.
struct TornFixture {
    dir: PathBuf,
    wal: Vec<u8>,
    /// `boundaries[i]` = file offset after record `i` frames end;
    /// `boundaries[0]` = 8 (the header), so a cut at `boundaries[i]` keeps
    /// exactly `i` records intact.
    boundaries: Vec<usize>,
    /// `states[i]` = database state after `i` bulks committed.
    states: Vec<Database>,
}

fn torn_fixture() -> &'static TornFixture {
    static FIXTURE: OnceLock<TornFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut bundle =
            MicroWorkload::build(&MicroConfig::default().with_tuples(512).with_skew(0.3));
        let dir = scratch_dir("torn-fixture");
        let (_, states) = run_logged_bulks(
            &mut bundle,
            ExecutorChoice::Serial,
            &dir,
            FsyncPolicy::PerBulk,
            1536,
            256,
        );
        assert_eq!(states.len(), 7, "6 bulks + the initial state");
        let wal = std::fs::read(dir.join("gputx.wal")).expect("wal exists");
        // Walk the frames to find each record's end offset. The file header
        // is 16 bytes: 8-byte magic + 8-byte epoch.
        let mut boundaries = vec![16usize];
        let mut pos = 16usize;
        while pos + 8 <= wal.len() {
            let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 8 + len;
            assert!(pos <= wal.len(), "intact log has whole frames");
            boundaries.push(pos);
        }
        assert_eq!(boundaries.len(), 7, "one frame per bulk");
        TornFixture {
            dir,
            wal,
            boundaries,
            states,
        }
    })
}

proptest! {
    /// Kill the log at an arbitrary byte offset: recovery yields exactly the
    /// longest committed-bulk prefix, bit-identical to the state the engine
    /// had after that many bulks, and flags the torn tail iff the cut landed
    /// mid-frame.
    #[test]
    fn torn_wal_recovers_exactly_the_longest_committed_prefix(frac in 0.0f64..1.0) {
        let fx = torn_fixture();
        // Cuts range over everything past the 16-byte header (magic+epoch).
        let cut = 16 + ((fx.wal.len() - 16) as f64 * frac) as usize;
        let case_dir = fx.dir.join("torn-case");
        std::fs::create_dir_all(&case_dir).expect("mkdir");
        std::fs::copy(fx.dir.join("gputx.ckpt"), case_dir.join("gputx.ckpt"))
            .expect("copy checkpoint");
        std::fs::write(case_dir.join("gputx.wal"), &fx.wal[..cut]).expect("truncate");
        let recovery = recover(&case_dir).expect("recover");
        let expected = fx.boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(recovery.replayed as usize, expected, "cut at {}", cut);
        prop_assert_eq!(recovery.torn_tail, !fx.boundaries.contains(&cut));
        prop_assert!(
            recovery.db == fx.states[expected],
            "cut at {} must land exactly on the {}-bulk prefix state",
            cut,
            expected
        );
    }
}
