//! End-to-end smoke test of the facade path: the `examples/quickstart.rs` flow
//! (engine construction → device load → bulk submission → execution → commit
//! accounting) driven entirely through the `gputx_suite` re-exports, so the
//! top-level crate wiring is covered and the example cannot rot silently.

use gputx_suite::core::EngineBuilder;
use gputx_suite::storage::schema::{ColumnDef, TableSchema};
use gputx_suite::storage::{DataItemId, DataType, Database, Value};
use gputx_suite::txn::{BasicOp, ProcedureDef, ProcedureRegistry};

/// Mirror of the quickstart example, scaled down (1k accounts, 10k deposits)
/// to keep the suite fast.
#[test]
fn quickstart_flow_end_to_end() {
    const ACCOUNTS: i64 = 1_000;
    const DEPOSITS: u64 = 10_000;
    const INITIAL: f64 = 100.0;
    const AMOUNT: f64 = 5.0;

    // Schema + data load.
    let mut db = Database::column_store();
    let accounts = db.create_table(TableSchema::new(
        "accounts",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("balance", DataType::Double),
        ],
        vec![0],
    ));
    for i in 0..ACCOUNTS {
        db.table_mut(accounts)
            .insert(vec![Value::Int(i), Value::Double(INITIAL)]);
    }

    // One registered transaction type: a deposit with an abort path.
    let mut registry = ProcedureRegistry::new();
    let deposit = registry.register(ProcedureDef::new(
        "deposit",
        move |params, _db| {
            vec![BasicOp::write(DataItemId::new(
                accounts,
                params[0].as_int() as u64,
                1,
            ))]
        },
        |params| Some(params[0].as_int() as u64),
        move |ctx| {
            let row = ctx.param_int(0) as u64;
            let amount = ctx.param_double(1);
            let balance = ctx.read(accounts, row, 1).as_double();
            if amount < 0.0 && balance + amount < 0.0 {
                ctx.abort("insufficient funds");
                return;
            }
            ctx.write(accounts, row, 1, Value::Double(balance + amount));
        },
    ));

    // Engine construction loads the database into simulated device memory.
    let mut engine = EngineBuilder::new(db, registry).build();
    assert!(
        engine.load_time().as_millis() > 0.0,
        "device load must take simulated time"
    );
    assert!(
        engine.gpu().memory.used() > 0,
        "database must be resident in device memory"
    );

    // Submit a burst and execute it as bulks.
    for i in 0..DEPOSITS {
        engine.submit(
            deposit,
            vec![
                Value::Int((i % ACCOUNTS as u64) as i64),
                Value::Double(AMOUNT),
            ],
        );
    }
    let reports = engine.run_until_empty();

    // Commit counts are sane: every deposit commits, across >= 1 bulks.
    assert!(!reports.is_empty(), "at least one bulk must execute");
    let txns: usize = reports.iter().map(|r| r.transactions).sum();
    assert_eq!(txns, DEPOSITS as usize);
    assert_eq!(engine.total_committed(), DEPOSITS as usize);
    assert_eq!(engine.total_aborted(), 0);
    assert!(engine.overall_throughput().ktps() > 0.0);
    for report in &reports {
        assert!(
            report.total().as_secs() > 0.0,
            "bulks must take simulated time"
        );
    }

    // Every account received exactly DEPOSITS / ACCOUNTS deposits.
    let expected = INITIAL + AMOUNT * (DEPOSITS / ACCOUNTS as u64) as f64;
    let table = engine.db().table_by_name("accounts");
    for row in [0u64, (ACCOUNTS / 2) as u64, (ACCOUNTS - 1) as u64] {
        assert_eq!(table.get(row, 1), Value::Double(expected));
    }
}
