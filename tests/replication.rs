//! End-to-end replication tests: the replica is the primary, bit for bit.
//!
//! * **Promoted prefix == serial replay** — drive a replicated engine over a
//!   seeded micro stream, promote the follower, and require its database to
//!   be bit-identical to the engine's own state after the same number of
//!   bulks — which is itself asserted equal to a serial replay of exactly
//!   those transactions.
//! * **Arbitrary stream chops** — capture the exact byte stream a primary
//!   sends a fresh follower (snapshot + records), then cut it at arbitrary
//!   byte offsets (proptest + every frame boundary): the replica must apply
//!   precisely the complete-record prefix, never a torn frame.
//! * **Kill/resync mid-run** — a follower stopped mid-stream and resumed
//!   from its seed (possibly many bulks behind) converges to the primary.
//! * **Promotion during resync** — a follower promoted while a snapshot
//!   resync is in flight discards the partial snapshot, promotes its last
//!   installed state, and a new group forms under the promoted epoch.
//! * **Slow followers shed, never block** — a follower that stops reading
//!   gets gap-marked and resynced; the commit path never waits on it.

use gputx_core::EngineBuilder;
use gputx_durability::BulkLogRecord;
use gputx_replication::{
    Replica, ReplicaSeed, ReplicaSupervisor, ReplicationOptions, SupervisorConfig,
};
use gputx_server::proto::{encode_repl, read_frame, write_frame, ReplMsg, MAX_FRAME_LEN};
use gputx_server::socket_pair;
use gputx_storage::{Database, WireWriter};
use gputx_txn::{ProcedureRegistry, TxnSignature};
use gputx_workloads::{MicroConfig, MicroWorkload, WorkloadBundle};
use proptest::prelude::*;
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

fn micro(tuples: u64, seed: u64) -> WorkloadBundle {
    let mut bundle = MicroWorkload::build(
        &MicroConfig::default()
            .with_tuples(tuples)
            .with_types(4)
            .with_skew(0.3),
    );
    bundle.reseed(seed);
    bundle
}

/// Replay `sigs` serially (the paper's reference execution) and apply the
/// insert buffers once per bulk, exactly like the engine's commit.
fn serial_replay(
    db0: &Database,
    registry: &ProcedureRegistry,
    bulks: &[&[TxnSignature]],
) -> Database {
    let mut db = db0.clone();
    for bulk in bulks {
        for sig in *bulk {
            registry.execute(sig, &mut db);
        }
        db.apply_insert_buffers();
    }
    db
}

/// The tentpole property: run a replicated engine, kill the primary, and the
/// promoted follower's committed prefix is bit-identical — both to the
/// primary's own state after each bulk and to a serial replay of exactly the
/// acked transactions.
#[test]
fn promoted_follower_prefix_is_bit_identical_to_serial_replay() {
    const BULKS: usize = 8;
    const PER_BULK: usize = 32;
    let bundle = micro(256, 0xA11CE);
    let sigs = {
        let mut b = micro(256, 0xA11CE);
        b.generate_signatures(BULKS * PER_BULK, 0)
    };
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).replicate();
    let hub = builder.hub().expect("replicate() creates the hub");
    let mut engine = builder.build();

    let (server_end, follower_end) = socket_pair().expect("socketpair");
    hub.attach(server_end).expect("attach follower");
    let replica = Replica::start(follower_end).expect("start follower");
    assert!(replica.wait_synced(WAIT), "initial snapshot must install");

    // One engine snapshot per committed bulk: states[k] = after k records.
    let mut states: Vec<Database> = vec![engine.db().clone()];
    for chunk in sigs.chunks(PER_BULK) {
        for sig in chunk {
            engine.submit(sig.ty, sig.params.clone());
        }
        engine.execute_pending().expect("bulk executes");
        states.push(engine.db().clone());
    }
    assert!(
        hub.wait_acked(BULKS as u64, WAIT),
        "follower must ack the full stream"
    );

    // Primary loss: fence the hub and hand off to the best follower.
    assert!(hub.retire(), "retire hands off to the acked follower");
    let promotion = replica.promote().expect("synced follower promotes");
    let applied = promotion.applied_lsn as usize;
    assert_eq!(applied, BULKS, "fully acked follower applied everything");
    assert!(
        promotion.db == states[applied],
        "promoted prefix must equal the primary's state at LSN {applied}"
    );
    // And the primary's state is itself the serial replay of those bulks.
    let bulks: Vec<&[TxnSignature]> = sigs.chunks(PER_BULK).collect();
    let reference = serial_replay(&bundle.db, &bundle.registry, &bulks[..applied]);
    assert!(
        promotion.db == reference,
        "promoted prefix must equal serial replay of the acked transactions"
    );
    hub.stop();
}

/// A captured primary→follower byte stream plus everything needed to predict
/// the replica's state for any chop point.
struct CapturedStream {
    /// The exact bytes the primary sent (snapshot chunks, then records).
    bytes: Vec<u8>,
    /// Cumulative end offset of each frame within `bytes`.
    frame_ends: Vec<usize>,
    /// Number of frames that make up the snapshot.
    snapshot_frames: usize,
    /// states[k] = database after applying k records (states[0] = snapshot).
    states: Vec<Database>,
}

fn captured_stream() -> &'static CapturedStream {
    static STREAM: OnceLock<CapturedStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        const BULKS: usize = 6;
        const PER_BULK: usize = 24;
        let bundle = micro(128, 0xC0FFEE);
        let sigs = {
            let mut b = micro(128, 0xC0FFEE);
            b.generate_signatures(BULKS * PER_BULK, 0)
        };
        let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).replicate();
        let hub = builder.hub().expect("hub");
        let mut engine = builder.build();

        // A raw witness follower: handshake by hand, then capture the
        // primary's frames verbatim.
        let (server_end, mut witness) = socket_pair().expect("socketpair");
        hub.attach(server_end).expect("attach witness");
        write_frame(
            &mut witness,
            &encode_repl(&ReplMsg::Subscribe {
                epoch: 0,
                applied_lsn: 0,
            }),
        )
        .expect("subscribe");
        // The witness must be *registered* (snapshot cut at LSN 0, queue
        // subscribed) before the first bulk commits, or the snapshot lands
        // at a later LSN and fewer than BULKS records follow. Registration
        // and the snapshot cut share one mirror-lock acquisition, so
        // `followers == 1` implies the LSN-0 cut.
        let deadline = Instant::now() + WAIT;
        while hub.stats().followers == 0 {
            assert!(Instant::now() < deadline, "witness never registered");
            std::thread::yield_now();
        }

        for chunk in sigs.chunks(PER_BULK) {
            for sig in chunk {
                engine.submit(sig.ty, sig.params.clone());
            }
            engine.execute_pending().expect("bulk executes");
        }

        let mut bytes = Vec::new();
        let mut frame_ends = Vec::new();
        let mut snapshot_frames = 0usize;
        let mut snapshot_bytes = Vec::new();
        let mut records: Vec<BulkLogRecord> = Vec::new();
        while records.len() < BULKS {
            let payload = read_frame(&mut witness, MAX_FRAME_LEN)
                .expect("frame reads")
                .expect("stream stays open until the last record");
            match gputx_server::proto::decode_repl(&payload).expect("valid repl frame") {
                ReplMsg::SnapshotChunk { last, bytes: b, .. } => {
                    assert!(records.is_empty(), "snapshot precedes records");
                    snapshot_frames += 1;
                    snapshot_bytes.extend_from_slice(&b);
                    let _ = last;
                }
                ReplMsg::LogRecord { payload, .. } => {
                    records.push(BulkLogRecord::decode(&payload).expect("record decodes"));
                }
                other => panic!("unexpected frame {other:?}"),
            }
            write_frame(&mut bytes, &payload).expect("reframe");
            frame_ends.push(bytes.len());
        }
        hub.stop();

        let mut r = gputx_storage::WireReader::new(&snapshot_bytes);
        let snapshot = Database::decode(&mut r).expect("snapshot decodes");
        let mut states = vec![snapshot];
        for record in records {
            let mut next = states.last().expect("non-empty").clone();
            record.replay_into(&mut next);
            states.push(next);
        }
        CapturedStream {
            bytes,
            frame_ends,
            snapshot_frames,
            states,
        }
    })
}

/// Feed the replica exactly `chop` bytes of the captured stream, then EOF,
/// and assert it lands on the predicted complete-record prefix.
fn assert_chop_lands_on_a_record_boundary(chop: usize) {
    let stream = captured_stream();
    let chop = chop.min(stream.bytes.len());
    let complete_frames = stream.frame_ends.iter().filter(|&&end| end <= chop).count();
    let (server_end, follower_end) = socket_pair().expect("socketpair");
    let feeder = std::thread::spawn(move || {
        let mut s: &UnixStream = &server_end;
        use std::io::Write;
        let _ = s.write_all(&captured_stream().bytes[..chop]);
        let _ = server_end.shutdown(Shutdown::Write);
        server_end // keep the read side open so the replica's acks never fail
    });
    let mut replica = Replica::start(follower_end).expect("start follower");
    assert!(
        replica.wait_disconnected(WAIT),
        "EOF must surface as a disconnect"
    );
    let stats = replica.stats();
    if complete_frames < stream.snapshot_frames {
        assert!(!stats.synced, "a torn snapshot must not install");
        assert_eq!(stats.snapshots_installed, 0);
        assert!(replica.snapshot_db().is_none());
    } else {
        let applied = complete_frames - stream.snapshot_frames;
        assert_eq!(
            stats.applied_lsn as usize, applied,
            "exactly the complete-record prefix applies (chop at byte {chop})"
        );
        let db = replica
            .snapshot_db()
            .expect("synced replica has a snapshot");
        assert!(
            db == stream.states[applied],
            "state after {applied} records must be bit-identical (chop at byte {chop})"
        );
    }
    replica.stop();
    let _ = feeder.join();
}

proptest! {
    /// Random chop offsets across the whole captured stream.
    #[test]
    fn prop_chopped_streams_apply_only_complete_records(frac in 0.0f64..1.0) {
        let len = captured_stream().bytes.len();
        assert_chop_lands_on_a_record_boundary((len as f64 * frac) as usize);
    }
}

/// The adversarial offsets proptest may miss: exactly on, one before, and
/// one after every frame boundary.
#[test]
fn chops_at_exact_frame_boundaries_apply_only_complete_records() {
    let ends = captured_stream().frame_ends.clone();
    for end in ends {
        assert_chop_lands_on_a_record_boundary(end.saturating_sub(1));
        assert_chop_lands_on_a_record_boundary(end);
        assert_chop_lands_on_a_record_boundary(end + 1);
    }
}

/// Kill a follower mid-run, keep committing, then resume it from its seed:
/// it must converge on the primary's final state (via the log tail or a
/// snapshot — its choice, but bit-identical either way).
#[test]
fn follower_killed_mid_run_resyncs_and_converges() {
    const PER_BULK: usize = 24;
    let bundle = micro(128, 0xDEAD);
    let sigs = {
        let mut b = micro(128, 0xDEAD);
        b.generate_signatures(8 * PER_BULK, 0)
    };
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).replicate();
    let hub = builder.hub().expect("hub");
    let mut engine = builder.build();

    let (server_end, follower_end) = socket_pair().expect("socketpair");
    hub.attach(server_end).expect("attach");
    let mut replica = Replica::start(follower_end).expect("start");
    assert!(replica.wait_synced(WAIT));

    let run_bulks = |engine: &mut gputx_core::GpuTxEngine, range: std::ops::Range<usize>| {
        for chunk in sigs[range.start * PER_BULK..range.end * PER_BULK].chunks(PER_BULK) {
            for sig in chunk {
                engine.submit(sig.ty, sig.params.clone());
            }
            engine.execute_pending().expect("bulk executes");
        }
    };
    run_bulks(&mut engine, 0..3);
    assert!(replica.wait_applied(3, WAIT));

    // Kill: stop the reader and remember what the follower had.
    replica.stop();
    let seed = ReplicaSeed {
        db: replica.snapshot_db().expect("was synced"),
        epoch: replica.epoch(),
        applied_lsn: replica.applied_lsn(),
    };
    drop(replica);

    // The primary keeps committing while the follower is down.
    run_bulks(&mut engine, 3..8);

    // Resync from the seed; the primary sees a stale LSN and snapshots it.
    let (server_end, follower_end) = socket_pair().expect("socketpair");
    hub.attach(server_end).expect("re-attach");
    let replica = Replica::resume(follower_end, seed).expect("resume");
    assert!(
        replica.wait_applied(8, WAIT),
        "resynced follower catches up"
    );
    assert!(
        replica.snapshot_db().expect("synced") == *engine.db(),
        "resynced follower must be bit-identical to the primary"
    );
    hub.stop();
}

/// The supervised version of kill/resync: the wire dies repeatedly under a
/// [`ReplicaSupervisor`], which re-dials with backoff, resumes from
/// everything already applied (epoch re-validated by the subscribe
/// handshake), and converges to the primary — no manual seed plumbing.
#[test]
fn supervised_replica_reconnects_and_converges() {
    use std::sync::{Arc, Mutex};
    const PER_BULK: usize = 24;
    let bundle = micro(128, 0xFEED);
    let sigs = {
        let mut b = micro(128, 0xFEED);
        b.generate_signatures(8 * PER_BULK, 0)
    };
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).replicate();
    let hub = builder.hub().expect("hub");
    let mut engine = builder.build();

    // The connector stashes the latest follower-side stream so the test can
    // yank the wire out from under the supervisor.
    let current: Arc<Mutex<Option<UnixStream>>> = Arc::new(Mutex::new(None));
    let mut sup = ReplicaSupervisor::start(
        {
            let hub = hub.clone();
            let current = Arc::clone(&current);
            move || {
                let (server_end, follower_end) = socket_pair()?;
                hub.attach(server_end)?;
                *current.lock().expect("stash lock") = Some(follower_end.try_clone()?);
                Ok(Box::new(follower_end) as Box<dyn gputx_server::Duplex>)
            }
        },
        SupervisorConfig::default(),
    )
    .expect("supervisor starts");
    assert!(sup.wait_synced(WAIT), "initial sync");

    let run_bulks = |engine: &mut gputx_core::GpuTxEngine, range: std::ops::Range<usize>| {
        for chunk in sigs[range.start * PER_BULK..range.end * PER_BULK].chunks(PER_BULK) {
            for sig in chunk {
                engine.submit(sig.ty, sig.params.clone());
            }
            engine.execute_pending().expect("bulk executes");
        }
    };
    run_bulks(&mut engine, 0..3);
    assert!(sup.wait_applied(3, WAIT), "live session applies");

    // Two outages, each with commits while the wire is down: the supervisor
    // must resync through each (log tail or snapshot, the primary's choice).
    for (kill, watermark) in [(3usize, 6u64), (6, 8)] {
        current
            .lock()
            .expect("stash lock")
            .as_ref()
            .expect("connected at least once")
            .shutdown(Shutdown::Both)
            .expect("yank the wire");
        run_bulks(&mut engine, kill..watermark as usize);
        assert!(
            sup.wait_applied(watermark, WAIT),
            "supervisor catches up to LSN {watermark} after the outage"
        );
    }
    let stats = sup.stats();
    assert!(
        stats.reconnects >= 2,
        "each outage forces a reconnect, got {stats:?}"
    );
    assert!(!stats.gave_up, "retry budget never exhausted: {stats:?}");
    assert!(
        sup.snapshot_db().expect("synced") == *engine.db(),
        "supervised follower must be bit-identical to the primary"
    );
    sup.stop();
    // State survives stop: the final seed is the converged database.
    assert!(
        sup.seed().db == *engine.db(),
        "seed after stop is the converged state"
    );
    hub.stop();
}

/// Satellite: a follower promoted while a snapshot resync is in flight must
/// discard the partial snapshot, promote its last *installed* state, and a
/// fresh group must form under the promoted epoch.
#[test]
fn promotion_during_resync_discards_partial_snapshot() {
    // Act as the old primary by hand so the resync can be left half-sent.
    let (mut primary_end, follower_end) = socket_pair().expect("socketpair");
    let replica = Replica::start(follower_end).expect("start");

    // Drain the replica's Subscribe, then install a full snapshot at epoch
    // 101 with two records already folded in (next_lsn = 2).
    let sub = read_frame(&mut primary_end, MAX_FRAME_LEN)
        .expect("subscribe frame")
        .expect("open");
    assert!(matches!(
        gputx_server::proto::decode_repl(&sub).expect("decodes"),
        ReplMsg::Subscribe {
            epoch: 0,
            applied_lsn: 0
        }
    ));
    let (installed, registry) = {
        let bundle = micro(64, 0xBEE);
        (bundle.db.clone(), bundle.registry.clone())
    };
    let mut w = WireWriter::new();
    installed.encode_into(&mut w);
    let snapshot = w.into_bytes();
    write_frame(
        &mut primary_end,
        &encode_repl(&ReplMsg::SnapshotChunk {
            epoch: 101,
            next_lsn: 2,
            seq: 0,
            last: true,
            bytes: snapshot.clone(),
        }),
    )
    .expect("send snapshot");
    assert!(replica.wait_synced(WAIT));
    assert_eq!(replica.applied_lsn(), 2);

    // A newer primary (epoch 103) starts resyncing it — but only the first
    // half of the snapshot ever arrives.
    write_frame(
        &mut primary_end,
        &encode_repl(&ReplMsg::SnapshotChunk {
            epoch: 103,
            next_lsn: 9,
            seq: 0,
            last: false,
            bytes: snapshot[..snapshot.len() / 2].to_vec(),
        }),
    )
    .expect("send partial resync");

    // Operator promotes mid-resync: the partial snapshot must not leak into
    // the promotion — it promotes the installed epoch-101 state.
    let promotion = replica.promote().expect("was synced");
    assert_eq!(promotion.applied_lsn, 2, "promotes the installed prefix");
    assert!(
        promotion.db == installed,
        "partial resync bytes must be discarded"
    );
    assert!(
        promotion.epoch > 103,
        "promoted epoch must fence both old primaries"
    );

    // The promoted follower becomes a primary; a fresh follower syncs from
    // the *new* epoch and sees the promoted state.
    let builder = EngineBuilder::from_promotion(promotion, registry).replicate();
    let hub = builder.hub().expect("hub");
    let (server_end, follower_end) = socket_pair().expect("socketpair");
    hub.attach(server_end).expect("attach");
    let fresh = Replica::start(follower_end).expect("start");
    assert!(fresh.wait_synced(WAIT));
    assert_eq!(fresh.epoch(), hub.epoch(), "resyncs under the new epoch");
    assert!(fresh.snapshot_db().expect("synced") == installed);
    hub.stop();
}

/// Regression: a follower that stops reading must never block the commit
/// path — the hub marks it gapped and sheds, and every bulk still commits.
#[test]
fn slow_follower_sheds_but_never_blocks_commits() {
    const BULKS: usize = 64;
    const PER_BULK: usize = 16;
    let bundle = micro(128, 0x51de);
    let sigs = {
        let mut b = micro(128, 0x51de);
        b.generate_signatures(BULKS * PER_BULK, 0)
    };
    // A tiny queue so the stalled follower gaps after a handful of records.
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).replicate_with(
        ReplicationOptions {
            queue_depth: 4,
            ..ReplicationOptions::default()
        },
    );
    let hub = builder.hub().expect("hub");
    let mut engine = builder.build();

    // Raw follower: completes the handshake, then never reads again.
    let (server_end, mut stalled) = socket_pair().expect("socketpair");
    hub.attach(server_end).expect("attach");
    write_frame(
        &mut stalled,
        &encode_repl(&ReplMsg::Subscribe {
            epoch: 0,
            applied_lsn: 0,
        }),
    )
    .expect("subscribe");
    let deadline = Instant::now() + WAIT;
    while hub.stats().followers == 0 {
        assert!(Instant::now() < deadline, "follower must register");
        std::thread::yield_now();
    }

    let start = Instant::now();
    for chunk in sigs.chunks(PER_BULK) {
        for sig in chunk {
            engine.submit(sig.ty, sig.params.clone());
        }
        engine.execute_pending().expect("bulk executes");
    }
    assert_eq!(
        engine.total_committed() + engine.total_aborted(),
        BULKS * PER_BULK
    );
    assert_eq!(hub.next_lsn(), BULKS as u64, "every bulk published");
    assert!(
        start.elapsed() < WAIT,
        "commit path must not wait on the stalled follower"
    );
    let stats = hub.stats();
    assert!(
        stats.records_shed > 0,
        "the stalled follower's queue overflowed and shed: {stats:?}"
    );
    hub.stop();
    drop(stalled);
}

/// Soak (CI `replication` job runs it with `--ignored`): two followers under
/// pipelined load, one killed and resynced mid-run, then the primary retires
/// and the best follower's promoted prefix is verified bit-identical to a
/// serial replay of an acked prefix of the stream.
#[test]
#[ignore = "soak: run with --ignored in the replication CI job"]
fn soak_two_followers_kill_resync_promote_under_load() {
    const BULKS: usize = 120;
    const PER_BULK: usize = 32;
    let bundle = micro(256, 0x50AC);
    let sigs = {
        let mut b = micro(256, 0x50AC);
        b.generate_signatures(BULKS * PER_BULK, 0)
    };
    let builder = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).replicate();
    let hub = builder.hub().expect("hub");
    let mut engine = builder.build();

    let (a_srv, a_end) = socket_pair().expect("socketpair");
    hub.attach(a_srv).expect("attach a");
    let replica_a = Replica::start(a_end).expect("start a");
    let (b_srv, b_end) = socket_pair().expect("socketpair");
    hub.attach(b_srv).expect("attach b");
    let mut replica_b = Replica::start(b_end).expect("start b");
    assert!(replica_a.wait_synced(WAIT) && replica_b.wait_synced(WAIT));

    let mut states: Vec<Database> = vec![engine.db().clone()];
    for (i, chunk) in sigs.chunks(PER_BULK).enumerate() {
        for sig in chunk {
            engine.submit(sig.ty, sig.params.clone());
        }
        engine.execute_pending().expect("bulk executes");
        states.push(engine.db().clone());
        if i == BULKS / 3 {
            // Kill B mid-run...
            replica_b.stop();
        }
        if i == BULKS / 2 {
            // ...and resync it from its seed a third of the run later.
            let seed = ReplicaSeed {
                db: replica_b.snapshot_db().expect("b was synced"),
                epoch: replica_b.epoch(),
                applied_lsn: replica_b.applied_lsn(),
            };
            let (b_srv, b_end) = socket_pair().expect("socketpair");
            hub.attach(b_srv).expect("re-attach b");
            replica_b = Replica::resume(b_end, seed).expect("resume b");
        }
    }
    assert!(hub.wait_acked(BULKS as u64, WAIT), "both followers drain");
    assert!(replica_b.wait_applied(BULKS as u64, WAIT));

    assert!(hub.retire(), "hand off to the best follower");
    drop(replica_b);
    let promotion = replica_a.promote().expect("a was synced");
    let applied = promotion.applied_lsn as usize;
    assert!(
        promotion.db == states[applied],
        "prefix matches the primary"
    );
    let bulks: Vec<&[TxnSignature]> = sigs.chunks(PER_BULK).collect();
    let reference = serial_replay(&bundle.db, &bundle.registry, &bulks[..applied]);
    assert!(
        promotion.db == reference,
        "promoted prefix equals serial replay of the acked stream"
    );
    hub.stop();
}
