//! Cross-crate integration tests for engine-level behaviour: automatic
//! strategy selection, performance-model sanity (the qualitative claims of the
//! paper's evaluation), and device-memory accounting.

use gputx_core::config::StrategyChoice;
use gputx_core::{EngineBuilder, EngineConfig, StrategyKind};
use gputx_sim::CpuSpec;
use gputx_workloads::{MicroConfig, MicroWorkload, Tm1Config, TpccConfig};

#[test]
fn auto_selection_prefers_kset_on_wide_workloads_and_part_on_narrow_ones() {
    // Wide: 20k independent transactions — a huge 0-set.
    let mut wide = MicroWorkload::build(
        &MicroConfig::default()
            .with_types(4)
            .with_compute(1)
            .with_tuples(100_000),
    );
    let mut engine = EngineBuilder::new(wide.db.clone(), wide.registry.clone())
        .with_bulk_size(20_000)
        .build();
    for (ty, params) in wide.generate(20_000) {
        engine.submit(ty, params);
    }
    let report = engine.execute_pending().unwrap();
    assert_eq!(report.strategy, StrategyKind::Kset);

    // Narrow: extreme skew — a tiny 0-set and a deep graph.
    let mut narrow = MicroWorkload::build(
        &MicroConfig::default()
            .with_types(4)
            .with_compute(1)
            .with_tuples(1_000)
            .with_skew(0.98),
    );
    let mut engine = EngineBuilder::new(narrow.db.clone(), narrow.registry.clone())
        .with_bulk_size(4_000)
        .build();
    for (ty, params) in narrow.generate(4_000) {
        engine.submit(ty, params);
    }
    let report = engine.execute_pending().unwrap();
    assert_ne!(
        report.strategy,
        StrategyKind::Kset,
        "a tiny 0-set must not pick K-SET"
    );
}

#[test]
fn gputx_outperforms_the_quad_core_cpu_on_tm1() {
    // The qualitative headline of Figure 7: the full GPU engine beats the
    // 4-core CPU engine on the public benchmarks.
    let mut bundle = Tm1Config { scale_factor: 2 }.build();
    let n = 20_000;
    let gpu = gputx_bench_helpers::gpu_throughput(&mut bundle, n);
    let sigs = bundle.generate_signatures(n, 0);
    let mut cpu_db = bundle.db.clone();
    let cpu_report = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
        .build_cpu(CpuSpec::xeon_e5520())
        .execute_bulk(&mut cpu_db, &bundle.registry, &sigs);
    assert!(
        gpu.tps() > cpu_report.throughput().tps(),
        "GPUTx ({:.0} ktps) should outperform the quad-core CPU ({:.0} ktps)",
        gpu.ktps(),
        cpu_report.throughput().ktps()
    );
}

#[test]
fn grouping_by_type_improves_throughput_under_divergence() {
    // Figure 3's qualitative claim for high-cost transactions with many types.
    let cfg = MicroConfig::default()
        .with_types(32)
        .with_compute(16)
        .with_tuples(50_000);
    let run = |passes: u32| {
        let mut bundle = MicroWorkload::build(&cfg);
        let mut engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone())
            .with_config(EngineConfig::default().with_grouping_passes(passes))
            .with_bulk_size(16_384)
            .with_strategy(StrategyChoice::ForceKset)
            .build();
        for (ty, params) in bundle.generate(16_384) {
            engine.submit(ty, params);
        }
        engine.execute_pending().unwrap().throughput()
    };
    let ungrouped = run(0);
    let grouped = run(8);
    assert!(
        grouped.tps() > ungrouped.tps(),
        "grouping ({:.0} ktps) should beat no grouping ({:.0} ktps)",
        grouped.ktps(),
        ungrouped.ktps()
    );
}

#[test]
fn device_memory_accounts_for_the_resident_database() {
    let bundle = TpccConfig::default().with_warehouses(2).build();
    let engine = EngineBuilder::new(bundle.db.clone(), bundle.registry.clone()).build();
    assert_eq!(engine.gpu().memory.used(), bundle.db.device_bytes());
    assert!(engine.load_time().as_millis() > 0.0);
    // Column layout keeps host-only columns (strings) off the device.
    assert!(bundle.db.device_bytes() < bundle.db.total_bytes());
}

/// Tiny local helper namespace (kept out of the bench crate to avoid a
/// dev-dependency cycle).
mod gputx_bench_helpers {
    use gputx_core::{execute_bulk, Bulk, EngineConfig, ExecContext};
    use gputx_sim::{Gpu, SimDuration, Throughput};
    use gputx_workloads::WorkloadBundle;

    pub fn gpu_throughput(bundle: &mut WorkloadBundle, n: usize) -> Throughput {
        let sigs = bundle.generate_signatures(n, 0);
        let mut db = bundle.db.clone();
        let mut gpu = Gpu::c1060();
        let config = EngineConfig::default().with_bulk_size(n);
        let mut ctx = ExecContext {
            gpu: &mut gpu,
            db: &mut db,
            registry: &bundle.registry,
            config: &config,
        };
        let out = execute_bulk(&mut ctx, gputx_core::StrategyKind::Kset, &Bulk::new(sigs));
        let total: SimDuration = out.total();
        Throughput::from_count(out.transactions as u64, total)
    }
}
