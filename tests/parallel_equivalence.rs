//! Property tests: the multi-threaded executor (`gputx-exec`) is
//! bit-identical to the serial reference.
//!
//! For random TM1 and micro bulks, executing through `ExecutorChoice::
//! Parallel` at 1/2/4/8 worker threads must produce exactly the same
//! per-transaction outcomes and the same final database state as
//! `ExecutorChoice::Serial`, for both strategies whose host work the
//! executor parallelizes (K-SET waves and PART partition groups), and for
//! the H-Store-style CPU engine's partition groups.

use gputx_core::{execute_bulk, Bulk, EngineConfig, ExecContext, StrategyKind};
use gputx_cpu::engine::CpuEngine;
use gputx_exec::ExecutorChoice;
use gputx_sim::Gpu;
use gputx_storage::Database;
use gputx_txn::{ProcedureRegistry, TxnId, TxnOutcome, TxnSignature};
use gputx_workloads::{MicroConfig, MicroWorkload, Tm1Config, WorkloadBundle};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// TM1 takes a moment to populate; build it once and re-seed per case.
fn tm1() -> &'static Mutex<WorkloadBundle> {
    static TM1: OnceLock<Mutex<WorkloadBundle>> = OnceLock::new();
    TM1.get_or_init(|| Mutex::new(Tm1Config::default().build()))
}

fn micro() -> &'static Mutex<WorkloadBundle> {
    static MICRO: OnceLock<Mutex<WorkloadBundle>> = OnceLock::new();
    // A small, skewed relation so random bulks conflict and K-SET needs
    // several waves.
    MICRO.get_or_init(|| {
        Mutex::new(MicroWorkload::build(
            &MicroConfig::default().with_tuples(512).with_skew(0.3),
        ))
    })
}

/// Snapshot the bundle's database and draw a reproducible random bulk.
fn draw_bulk(
    bundle: &Mutex<WorkloadBundle>,
    seed: u64,
    n: usize,
) -> (Database, ProcedureRegistry, Vec<TxnSignature>) {
    let mut bundle = bundle.lock().expect("workload mutex poisoned");
    bundle.reseed(seed);
    let sigs = bundle.generate_signatures(n, 0);
    (bundle.db.clone(), bundle.registry.clone(), sigs)
}

/// Execute one bulk with one strategy on the chosen executor; returns the
/// final database and the per-transaction outcomes.
fn run_gpu(
    db0: &Database,
    registry: &ProcedureRegistry,
    sigs: &[TxnSignature],
    strategy: StrategyKind,
    choice: ExecutorChoice,
) -> (Database, Vec<(TxnId, TxnOutcome)>) {
    let mut db = db0.clone();
    let mut gpu = Gpu::c1060();
    let config = EngineConfig {
        executor: choice,
        ..EngineConfig::default()
    };
    let mut ctx = ExecContext {
        gpu: &mut gpu,
        db: &mut db,
        registry,
        config: &config,
    };
    let out = execute_bulk(&mut ctx, strategy, &Bulk::new(sigs.to_vec()));
    (db, out.outcomes)
}

fn assert_equivalent_for(
    bundle: &Mutex<WorkloadBundle>,
    seed: u64,
    n: usize,
    threads: usize,
    strategies: &[StrategyKind],
    check_cpu_engine: bool,
) {
    let (db0, registry, sigs) = draw_bulk(bundle, seed, n);
    for &strategy in strategies {
        let (serial_db, serial_outcomes) =
            run_gpu(&db0, &registry, &sigs, strategy, ExecutorChoice::Serial);
        let (parallel_db, parallel_outcomes) = run_gpu(
            &db0,
            &registry,
            &sigs,
            strategy,
            ExecutorChoice::parallel(threads),
        );
        assert_eq!(
            parallel_outcomes, serial_outcomes,
            "{strategy} outcomes must match at {threads} threads"
        );
        assert!(
            parallel_db == serial_db,
            "{strategy} final state must match at {threads} threads"
        );
    }
    if !check_cpu_engine {
        return;
    }
    // The CPU engine's partition groups must agree with its serial loop too.
    let serial_engine = CpuEngine::xeon_quad_core();
    let mut serial_db = db0.clone();
    let serial_report = serial_engine.execute_bulk(&mut serial_db, &registry, &sigs);
    let mut parallel_db = db0.clone();
    let parallel_report = gputx_core::EngineBuilder::new(db0.clone(), registry.clone())
        .with_executor(ExecutorChoice::parallel(threads))
        .build_cpu(gputx_sim::CpuSpec::xeon_e5520())
        .execute_bulk(&mut parallel_db, &registry, &sigs);
    assert_eq!(parallel_report.committed, serial_report.committed);
    assert_eq!(parallel_report.aborted, serial_report.aborted);
    assert!(
        parallel_db == serial_db,
        "CPU engine state must match at {threads} threads"
    );
}

proptest! {
    /// Random micro bulks: parallel == serial at 1/2/4/8 threads, for both
    /// parallelized strategies and the CPU engine.
    #[test]
    fn prop_micro_parallel_equals_serial(
        seed in 0u64..u64::MAX / 2,
        n in 16usize..400,
        threads_log2 in 0u32..4,
    ) {
        assert_equivalent_for(
            micro(),
            seed,
            n,
            1usize << threads_log2,
            &[StrategyKind::Kset, StrategyKind::Part],
            true,
        );
    }
}

/// Random TM1 bulks: parallel == serial at 1/2/4/8 threads.
///
/// TM1's populated database is large enough that cloning and comparing it is
/// the dominant cost in debug builds, so instead of the full
/// [`proptest::CASES`] matrix this test draws a smaller sample — every thread
/// count, alternating K-SET and PART — from the same deterministic proptest
/// RNG. The micro property above keeps full-case coverage.
#[test]
fn prop_tm1_parallel_equals_serial() {
    use proptest::test_runner::TestRng;
    let mut rng = TestRng::deterministic();
    for case in 0..12usize {
        let threads = 1usize << (case % 4);
        let strategy = if case % 2 == 0 {
            StrategyKind::Kset
        } else {
            StrategyKind::Part
        };
        let seed = rng.next_u64();
        let n = rng.below(16, 220);
        assert_equivalent_for(tm1(), seed, n, threads, &[strategy], case % 4 == 3);
    }
}
